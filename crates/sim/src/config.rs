//! Cluster configuration: the heterogeneous architecture of the paper's
//! Figure 2 — `n` nodes, each with its own relative CPU power, memory
//! capacity, and local-disk I/O latency, joined by a uniform network.
//!
//! All latency-like fields are fractional nanoseconds (`f64`); the cost
//! model multiplies and sums in `f64` and rounds once when charging a
//! rank's virtual clock.

use crate::error::{SimError, SimResult};
use crate::fault::FaultSpec;

/// One node of the heterogeneous cluster (Figure 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSpec {
    /// Relative CPU power; 1.0 is the baseline node. A node with power
    /// 2.0 performs a unit of work in half the baseline time. The paper
    /// emulates a slower CPU "by forcing the process to do extra work";
    /// we divide the charged compute time instead, which is equivalent.
    pub cpu_power: f64,
    /// Physical memory available to the application for in-core local
    /// arrays (ICLAs), in bytes.
    pub memory_bytes: u64,
    /// Fixed per-access read seek overhead `O_r`, ns.
    pub io_read_seek_ns: f64,
    /// Fixed per-access write seek overhead `O_w`, ns.
    pub io_write_seek_ns: f64,
    /// Per-byte read latency, ns/byte (the paper emulates differing I/O
    /// speeds by scaling transfer sizes; we scale latency, which yields
    /// the same charged duration).
    pub io_read_ns_per_byte: f64,
    /// Per-byte write latency, ns/byte.
    pub io_write_ns_per_byte: f64,
    /// Working sets at or below this size enjoy the cache speedup. This
    /// models the memory-cache hierarchy effect that MHETA explicitly
    /// does NOT capture (paper §5.4, limitation 1).
    pub cache_bytes: u64,
    /// Multiplier (< 1.0) applied to compute cost when the working set
    /// fits in `cache_bytes`.
    pub cache_speedup: f64,
    /// Multiplier (≤ 1.0) applied to a variable's read latency after
    /// its first complete traversal: sequential re-reads benefit from
    /// OS read-ahead and buffer caching. The instrumented iteration
    /// measures *cold* reads, so MHETA slightly overestimates I/O for
    /// the remaining (warm) iterations — the paper's observed
    /// overestimation right before the I-C distribution (§5.2.2).
    pub warm_read_factor: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            cpu_power: 1.0,
            memory_bytes: 512 * 1024,
            io_read_seek_ns: 5.0e6,     // 5 ms seek
            io_write_seek_ns: 6.0e6,    // 6 ms seek
            io_read_ns_per_byte: 500.0, // synthetic out-of-core scale
            io_write_ns_per_byte: 550.0,
            cache_bytes: 64 * 1024,
            cache_speedup: 0.93,
            warm_read_factor: 0.9,
        }
    }
}

impl NodeSpec {
    /// Scale this node's CPU power (builder-style).
    #[must_use]
    pub fn with_cpu_power(mut self, p: f64) -> Self {
        self.cpu_power = p;
        self
    }

    /// Set this node's memory capacity (builder-style).
    #[must_use]
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Scale both read and write I/O latency by `factor` (builder-style).
    /// `factor > 1` means a slower disk.
    #[must_use]
    pub fn with_io_factor(mut self, factor: f64) -> Self {
        self.io_read_seek_ns *= factor;
        self.io_write_seek_ns *= factor;
        self.io_read_ns_per_byte *= factor;
        self.io_write_ns_per_byte *= factor;
        self
    }
}

/// Uniform interconnect parameters (LogP-style: overheads, latency, and
/// inverse bandwidth).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetSpec {
    /// Sender-side overhead `o_s`, ns: CPU time to prepare and copy the
    /// message into a system buffer.
    pub send_overhead_ns: f64,
    /// Receiver-side overhead `o_r`, ns: CPU time to process an
    /// incoming message.
    pub recv_overhead_ns: f64,
    /// Wire latency `alpha`, ns, paid once per message.
    pub latency_ns: f64,
    /// Inverse bandwidth `beta`, ns per payload byte.
    pub ns_per_byte: f64,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            send_overhead_ns: 20_000.0, // 20 us
            recv_overhead_ns: 20_000.0, // 20 us
            latency_ns: 50_000.0,       // 50 us
            ns_per_byte: 10.0,          // ~100 MB/s
        }
    }
}

impl NetSpec {
    /// Full in-flight transfer time for a message of `bytes` payload
    /// bytes: `alpha + bytes * beta` (excludes endpoint overheads).
    #[must_use]
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 * self.ns_per_byte
    }
}

/// Deterministic noise applied to every charged cost, modelling the
/// run-to-run perturbations that make the paper's instrumented iteration
/// imperfect (§5.2.1 reports up to 1% error even at the instrumented
/// distribution).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseSpec {
    /// Half-width of the multiplicative uniform perturbation: each cost
    /// is scaled by a factor drawn from `[1 - amplitude, 1 + amplitude]`.
    /// Zero disables noise entirely.
    pub amplitude: f64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec { amplitude: 0.01 }
    }
}

/// The whole emulated cluster.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterSpec {
    /// Human-readable name (e.g. "DC", "IO", "HY1").
    pub name: String,
    /// Per-node hardware.
    pub nodes: Vec<NodeSpec>,
    /// Interconnect.
    pub net: NetSpec,
    /// Baseline cost of one unit of application work on a power-1.0
    /// node, ns. Applications count work in algorithm-specific units
    /// (element updates, multiply-adds); this constant sets the scale.
    pub compute_ns_per_unit: f64,
    /// Cost perturbation model.
    pub noise: NoiseSpec,
    /// Master RNG seed; every run of the same program on the same spec
    /// and seed is bit-identical.
    pub seed: u64,
    /// Deterministic fault-injection plan. Disabled by default; see
    /// [`crate::fault`].
    #[cfg_attr(feature = "serde", serde(default))]
    pub faults: FaultSpec,
    /// Host wall-clock backstop, in milliseconds, for any blocking wait
    /// (receive, barrier). If a rank's OS thread waits longer than this
    /// in *real* time, the wait is abandoned with
    /// [`SimError::Timeout`] instead of hanging the process.
    #[cfg_attr(feature = "serde", serde(default = "default_wait_timeout_ms"))]
    pub wait_timeout_ms: u64,
}

/// Default blocking-wait backstop: generous enough that only a genuine
/// hang (never legitimate simulation work) can trip it.
fn default_wait_timeout_ms() -> u64 {
    120_000
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` default nodes.
    #[must_use]
    pub fn homogeneous(n: usize) -> Self {
        ClusterSpec {
            name: format!("HOM{n}"),
            nodes: vec![NodeSpec::default(); n],
            net: NetSpec::default(),
            compute_ns_per_unit: 2_000.0,
            noise: NoiseSpec::default(),
            seed: 0x4d48_4554_4121,
            faults: FaultSpec::default(),
            wait_timeout_ms: default_wait_timeout_ms(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never valid for execution).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when all nodes have identical relative CPU power. The
    /// distribution spectrum degenerates in this case (Blk == Bal,
    /// paper §5.1).
    #[must_use]
    pub fn uniform_cpu(&self) -> bool {
        self.nodes
            .windows(2)
            .all(|w| (w[0].cpu_power - w[1].cpu_power).abs() < 1e-12)
    }

    /// Total memory across the cluster, bytes.
    #[must_use]
    pub fn total_memory(&self) -> u64 {
        self.nodes.iter().map(|n| n.memory_bytes).sum()
    }

    /// Validate physical plausibility; called by the engine at startup.
    pub fn validate(&self) -> SimResult<()> {
        if self.nodes.is_empty() {
            return Err(SimError::InvalidConfig("cluster has zero nodes".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !(n.cpu_power.is_finite() && n.cpu_power > 0.0) {
                return Err(SimError::InvalidConfig(format!(
                    "node {i}: cpu_power must be positive and finite, got {}",
                    n.cpu_power
                )));
            }
            if n.memory_bytes == 0 {
                return Err(SimError::InvalidConfig(format!(
                    "node {i}: memory_bytes must be nonzero"
                )));
            }
            for (label, v) in [
                ("io_read_seek_ns", n.io_read_seek_ns),
                ("io_write_seek_ns", n.io_write_seek_ns),
                ("io_read_ns_per_byte", n.io_read_ns_per_byte),
                ("io_write_ns_per_byte", n.io_write_ns_per_byte),
            ] {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(SimError::InvalidConfig(format!(
                        "node {i}: {label} must be nonnegative and finite, got {v}"
                    )));
                }
            }
            if !(n.cache_speedup.is_finite() && n.cache_speedup > 0.0 && n.cache_speedup <= 1.0) {
                return Err(SimError::InvalidConfig(format!(
                    "node {i}: cache_speedup must be in (0, 1], got {}",
                    n.cache_speedup
                )));
            }
            if !(n.warm_read_factor.is_finite()
                && n.warm_read_factor > 0.0
                && n.warm_read_factor <= 1.0)
            {
                return Err(SimError::InvalidConfig(format!(
                    "node {i}: warm_read_factor must be in (0, 1], got {}",
                    n.warm_read_factor
                )));
            }
        }
        if !(self.compute_ns_per_unit.is_finite() && self.compute_ns_per_unit > 0.0) {
            return Err(SimError::InvalidConfig(
                "compute_ns_per_unit must be positive".into(),
            ));
        }
        if !(self.noise.amplitude.is_finite() && (0.0..1.0).contains(&self.noise.amplitude)) {
            return Err(SimError::InvalidConfig(format!(
                "noise amplitude must be in [0, 1) — a multiplicative half-width; \
                 amplitudes ≥ 1.0 would allow nonpositive cost factors — got {}",
                self.noise.amplitude
            )));
        }
        self.faults.validate(self.nodes.len())?;
        if self.wait_timeout_ms == 0 {
            return Err(SimError::InvalidConfig(
                "wait_timeout_ms must be positive (it is the hang backstop for blocking waits)"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_validates() {
        let c = ClusterSpec::homogeneous(8);
        assert_eq!(c.len(), 8);
        assert!(c.uniform_cpu());
        c.validate().expect("default cluster must be valid");
    }

    #[test]
    fn zero_nodes_rejected() {
        let mut c = ClusterSpec::homogeneous(2);
        c.nodes.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn negative_cpu_power_rejected() {
        let mut c = ClusterSpec::homogeneous(2);
        c.nodes[1].cpu_power = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_memory_rejected() {
        let mut c = ClusterSpec::homogeneous(2);
        c.nodes[0].memory_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cache_speedup_bounds_enforced() {
        let mut c = ClusterSpec::homogeneous(2);
        c.nodes[0].cache_speedup = 1.5;
        assert!(c.validate().is_err());
        c.nodes[0].cache_speedup = 0.9;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn noise_amplitude_bounds() {
        let mut c = ClusterSpec::homogeneous(2);
        c.noise.amplitude = 1.0;
        let err = c.validate().unwrap_err();
        assert!(
            err.to_string().contains("amplitude") && err.to_string().contains('1'),
            "{err}"
        );
        c.noise.amplitude = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_spec_validated_through_cluster() {
        let mut c = ClusterSpec::homogeneous(2);
        c.faults.msg_resend_rate = 2.0;
        assert!(c.validate().is_err());
        c.faults.msg_resend_rate = 0.1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_wait_timeout_rejected() {
        let mut c = ClusterSpec::homogeneous(2);
        c.wait_timeout_ms = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn io_factor_scales_all_disk_costs() {
        let n = NodeSpec::default().with_io_factor(2.0);
        let d = NodeSpec::default();
        assert_eq!(n.io_read_seek_ns, d.io_read_seek_ns * 2.0);
        assert_eq!(n.io_write_ns_per_byte, d.io_write_ns_per_byte * 2.0);
    }

    #[test]
    fn uniform_cpu_detects_variation() {
        let mut c = ClusterSpec::homogeneous(4);
        assert!(c.uniform_cpu());
        c.nodes[2].cpu_power = 2.0;
        assert!(!c.uniform_cpu());
    }

    #[test]
    fn transfer_time_is_affine_in_bytes() {
        let net = NetSpec::default();
        let base = net.transfer_ns(0);
        assert_eq!(base, net.latency_ns);
        assert_eq!(net.transfer_ns(100) - base, 100.0 * net.ns_per_byte);
    }
}
