//! Per-rank execution traces.
//!
//! Traces record what each simulated rank did and when, on its virtual
//! clock. The MPI layer's interposition hooks provide the *semantic*
//! attribution (which parallel section / tile / stage an operation
//! belongs to); this trace is the raw operational record used by tests
//! and debugging output.

use crate::fault::FaultKind;
use crate::time::SimTime;

/// What a traced interval was spent doing.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[allow(missing_docs)] // variant fields are self-describing
pub enum EventKind {
    /// Local computation of `work_units` units of application work.
    Compute { work_units: f64 },
    /// Synchronous disk read of `bytes` of variable `var`.
    DiskRead { var: u32, bytes: u64 },
    /// Synchronous disk write of `bytes` of variable `var`.
    DiskWrite { var: u32, bytes: u64 },
    /// Asynchronous (prefetch) read issue. `latency_ns` is the full
    /// disk-transfer latency of the request: the prefetch completes at
    /// `end + latency_ns` on the issuing rank's clock, so the portion
    /// not covered by a later blocked wait was overlapped with other
    /// work.
    PrefetchIssue {
        var: u32,
        bytes: u64,
        latency_ns: u64,
    },
    /// Blocking wait for a previously issued prefetch; `blocked_ns` is
    /// the portion of the interval actually spent stalled on the disk.
    PrefetchWait { var: u32, blocked_ns: u64 },
    /// Message send; the interval covers the sender-side overhead only.
    Send { to: usize, tag: u32, bytes: u64 },
    /// Message receive; `blocked_ns` is the time spent waiting for the
    /// message to arrive before the receive overhead was charged.
    Recv {
        from: usize,
        tag: u32,
        bytes: u64,
        blocked_ns: u64,
    },
    /// An injected fault (see [`crate::fault`]). The interval covers
    /// any virtual time the fault itself consumed (e.g. the wasted seek
    /// of a failed disk attempt); instantaneous faults such as window
    /// entries are recorded as zero-length events.
    Fault { fault: FaultKind },
    /// Memory-in-use level change on this rank's [`MemTracker`]
    /// (I/O staging buffers entering or leaving use). Zero-length
    /// sample: the level holds from this instant until the next
    /// `MemLevel` event. Exporters render these as counter tracks.
    ///
    /// [`MemTracker`]: crate::disk::MemTracker
    MemLevel { in_use: u64, high_water: u64 },
}

/// One traced interval on a rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Event {
    /// Virtual time at which the operation began.
    pub start: SimTime,
    /// Virtual time at which the operation completed.
    pub end: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Which phase of crash recovery a [`RecoverySpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub enum RecoveryKind {
    /// Periodic checkpoint write of local application state.
    Checkpoint,
    /// Post-crash rollback: dead-set agreement plus reloading the last
    /// checkpoint from local disk.
    Rollback,
    /// Re-spreading the dead ranks' rows over the survivors (disk
    /// fetches of orphaned state plus survivor-to-survivor transfers).
    Redistribution,
    /// Re-running the MHETA prediction on the shrunken cluster.
    Reprediction,
    /// Proactive mid-run GEN_BLOCK rebalancing: applying a new
    /// distribution at an iteration boundary after the failure detector
    /// confirmed a degrade, rejoin, or hot-spare enlistment (no
    /// rollback — live state is transferred in place).
    Rebalance,
}

impl RecoveryKind {
    /// Stable lower-case name used in metrics counters, audit terms and
    /// Perfetto slice labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::Checkpoint => "checkpoint",
            RecoveryKind::Rollback => "rollback",
            RecoveryKind::Redistribution => "redistribution",
            RecoveryKind::Reprediction => "reprediction",
            RecoveryKind::Rebalance => "rebalance",
        }
    }
}

/// A half-open interval `[start_ns, end_ns)` of one rank's virtual
/// timeline spent on crash-recovery machinery rather than application
/// work. Spans on a rank are non-overlapping and ordered; observability
/// consumers (audit, Perfetto) attribute the covered trace events to the
/// span's [`RecoveryKind`] instead of their natural cost category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RecoverySpan {
    /// Virtual time at which the recovery phase began on this rank.
    pub start_ns: u64,
    /// Virtual time at which the recovery phase ended on this rank.
    pub end_ns: u64,
    /// Which recovery phase the interval covers.
    pub kind: RecoveryKind,
}

impl RecoverySpan {
    /// Length of the span in nanoseconds (0 for malformed spans).
    #[must_use]
    pub fn len_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The complete trace of one rank for one run.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RankTrace {
    /// Rank index.
    pub rank: usize,
    /// Events in program order (which is also virtual-time order).
    pub events: Vec<Event>,
    /// The rank's virtual clock when it finished.
    pub finish: SimTime,
}

impl RankTrace {
    /// Total virtual time this rank spent blocked (in receives and
    /// prefetch waits).
    #[must_use]
    pub fn total_blocked_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Recv { blocked_ns, .. } | EventKind::PrefetchWait { blocked_ns, .. } => {
                    blocked_ns
                }
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved to/from this rank's local disk.
    #[must_use]
    pub fn total_disk_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::DiskRead { bytes, .. }
                | EventKind::DiskWrite { bytes, .. }
                | EventKind::PrefetchIssue { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total message payload bytes sent by this rank.
    #[must_use]
    pub fn total_sent_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Send { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of injected-fault events recorded on this rank.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Fault { .. }))
            .count()
    }

    /// The injected faults recorded on this rank, in program order.
    #[must_use]
    pub fn faults(&self) -> Vec<FaultKind> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Fault { fault } => Some(fault),
                _ => None,
            })
            .collect()
    }

    /// Peak memory-in-use observed on this rank (the final high-water
    /// mark among [`EventKind::MemLevel`] samples); 0 when memory
    /// tracking produced no samples (tracing off or no I/O staging).
    #[must_use]
    pub fn peak_mem_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::MemLevel { high_water, .. } => high_water,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Check the internal consistency of the trace: events must be
    /// non-overlapping and ordered on the virtual clock.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let mut prev_end = SimTime::ZERO;
        for e in &self.events {
            if e.start < prev_end || e.end < e.start {
                return false;
            }
            prev_end = e.end;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u64, e: u64, kind: EventKind) -> Event {
        Event {
            start: SimTime(s),
            end: SimTime(e),
            kind,
        }
    }

    #[test]
    fn monotone_trace_accepted() {
        let t = RankTrace {
            rank: 0,
            events: vec![
                ev(0, 5, EventKind::Compute { work_units: 1.0 }),
                ev(5, 9, EventKind::DiskRead { var: 1, bytes: 64 }),
            ],
            finish: SimTime(9),
        };
        assert!(t.is_monotone());
        assert_eq!(t.total_disk_bytes(), 64);
    }

    #[test]
    fn overlapping_trace_rejected() {
        let t = RankTrace {
            rank: 0,
            events: vec![
                ev(0, 5, EventKind::Compute { work_units: 1.0 }),
                ev(4, 9, EventKind::Compute { work_units: 1.0 }),
            ],
            finish: SimTime(9),
        };
        assert!(!t.is_monotone());
    }

    #[test]
    fn blocked_time_sums_recv_and_prefetch() {
        let t = RankTrace {
            rank: 1,
            events: vec![
                ev(
                    0,
                    10,
                    EventKind::Recv {
                        from: 0,
                        tag: 7,
                        bytes: 8,
                        blocked_ns: 6,
                    },
                ),
                ev(
                    10,
                    20,
                    EventKind::PrefetchWait {
                        var: 2,
                        blocked_ns: 3,
                    },
                ),
            ],
            finish: SimTime(20),
        };
        assert_eq!(t.total_blocked_ns(), 9);
    }

    #[test]
    fn sent_bytes_counts_only_sends() {
        let t = RankTrace {
            rank: 2,
            events: vec![
                ev(
                    0,
                    1,
                    EventKind::Send {
                        to: 3,
                        tag: 0,
                        bytes: 100,
                    },
                ),
                ev(1, 2, EventKind::DiskWrite { var: 9, bytes: 50 }),
            ],
            finish: SimTime(2),
        };
        assert_eq!(t.total_sent_bytes(), 100);
        assert_eq!(t.total_disk_bytes(), 50);
    }

    #[test]
    fn fault_events_are_counted_and_listed() {
        let t = RankTrace {
            rank: 0,
            events: vec![
                ev(0, 5, EventKind::Compute { work_units: 1.0 }),
                ev(
                    5,
                    5,
                    EventKind::Fault {
                        fault: FaultKind::Slowdown { factor: 1.5 },
                    },
                ),
                ev(
                    5,
                    9,
                    EventKind::Fault {
                        fault: FaultKind::ReadFault { var: 2, attempt: 1 },
                    },
                ),
            ],
            finish: SimTime(9),
        };
        assert!(t.is_monotone(), "zero-length fault events stay monotone");
        assert_eq!(t.fault_count(), 2);
        assert_eq!(
            t.faults(),
            vec![
                FaultKind::Slowdown { factor: 1.5 },
                FaultKind::ReadFault { var: 2, attempt: 1 },
            ]
        );
    }
}
