//! Emulated architecture presets.
//!
//! The paper evaluates MHETA on seventeen emulated 8-node architectures
//! (twelve of which are reused for the prefetching experiments), four of
//! which are described in detail in Table 1:
//!
//! * **DC** ("different CPUs") — two nodes with lower and two with
//!   higher relative CPU power; memory and disks uniform and ample.
//! * **IO** ("I/O-induced") — uniform CPU power, but half the nodes have
//!   high I/O latency and small memories.
//! * **HY1** (hybrid) — four nodes with varying CPU powers, the other
//!   four with low I/O latency and small memories.
//! * **HY2** (hybrid) — four nodes with varying CPU power, two with high
//!   I/O latency, two with large memories.
//!
//! The remaining architectures sweep the same axes (CPU spread, memory
//! restriction, disk speed) to populate the min/avg/max statistics of
//! Figure 9. Absolute scales are synthetic (see DESIGN.md): only the
//! *ratios* between computation, communication, and I/O matter for the
//! phenomena the paper studies.

use crate::config::{ClusterSpec, NodeSpec};
use crate::fault::FaultSpec;

/// Nodes per emulated cluster, as in the paper's testbed.
pub const CLUSTER_NODES: usize = 8;

/// Baseline application memory per node, bytes. Datasets are sized so a
/// block distribution leaves each baseline node in core.
pub const BASE_MEMORY: u64 = 512 * 1024;

/// A restricted node's memory: forces out-of-core local arrays.
pub const SMALL_MEMORY: u64 = 64 * 1024;

/// An ample node's memory: in core even under very skewed distributions.
pub const LARGE_MEMORY: u64 = 4 * 1024 * 1024;

fn base_nodes() -> Vec<NodeSpec> {
    vec![NodeSpec::default().with_memory(BASE_MEMORY); CLUSTER_NODES]
}

fn cluster(name: &str, nodes: Vec<NodeSpec>) -> ClusterSpec {
    let mut c = ClusterSpec::homogeneous(CLUSTER_NODES);
    c.name = name.to_string();
    c.nodes = nodes;
    c
}

/// Table 1, configuration **DC**: two slower nodes, two faster nodes,
/// the rest at baseline; memory ample everywhere so I/O never dominates.
#[must_use]
pub fn dc() -> ClusterSpec {
    let mut nodes = base_nodes();
    for n in &mut nodes {
        n.memory_bytes = LARGE_MEMORY;
    }
    nodes[0].cpu_power = 0.5;
    nodes[1].cpu_power = 0.5;
    nodes[6].cpu_power = 1.75;
    nodes[7].cpu_power = 1.75;
    cluster("DC", nodes)
}

/// Table 1, configuration **IO**: equal CPU power, half the nodes with
/// high I/O latency and small memories.
#[must_use]
pub fn io() -> ClusterSpec {
    let mut nodes = base_nodes();
    for n in &mut nodes[4..] {
        n.memory_bytes = SMALL_MEMORY;
        *n = n.clone().with_io_factor(3.0);
    }
    cluster("IO", nodes)
}

/// Table 1, configuration **HY1**: four nodes with varying CPU power,
/// four with low I/O latency and small memories.
#[must_use]
pub fn hy1() -> ClusterSpec {
    let mut nodes = base_nodes();
    let powers = [1.0, 1.3, 1.6, 2.0];
    for (n, &p) in nodes[..4].iter_mut().zip(&powers) {
        n.cpu_power = p;
    }
    for n in &mut nodes[4..] {
        n.memory_bytes = SMALL_MEMORY;
        *n = n.clone().with_io_factor(0.5);
    }
    cluster("HY1", nodes)
}

/// Table 1, configuration **HY2**: four nodes with varying CPU power,
/// two with high I/O latency, two with large memories.
#[must_use]
pub fn hy2() -> ClusterSpec {
    let mut nodes = base_nodes();
    let powers = [0.6, 1.0, 1.4, 1.8];
    for (n, &p) in nodes[..4].iter_mut().zip(&powers) {
        n.cpu_power = p;
    }
    for n in &mut nodes[4..6] {
        n.memory_bytes = 2 * SMALL_MEMORY;
        *n = n.clone().with_io_factor(2.0);
    }
    for n in &mut nodes[6..] {
        n.memory_bytes = LARGE_MEMORY;
    }
    cluster("HY2", nodes)
}

/// Short prose description of a Table 1 configuration, for the
/// `table1` experiment binary.
#[must_use]
pub fn table1_description(name: &str) -> &'static str {
    match name {
        "DC" => {
            "Two nodes have a lower relative CPU power, and two other nodes \
             have higher relative CPU power. The rest are unchanged."
        }
        "IO" => {
            "Half of the nodes have high I/O latency and small memories, but \
             all nodes have equal relative CPU power."
        }
        "HY1" => {
            "Four nodes have varying relative CPU powers and the other four \
             have low I/O latencies and small memories."
        }
        "HY2" => {
            "Four nodes have varying relative CPU power and two nodes have \
             high I/O latencies. The other two have large memories."
        }
        _ => "(not a Table 1 configuration)",
    }
}

/// The seventeen emulated architectures of the non-prefetching accuracy
/// experiment (Figure 9, top left). The four named Table 1 configs are
/// included; the rest sweep CPU spread, memory restriction, and disk
/// speed individually and in combination.
#[must_use]
pub fn seventeen_architectures() -> Vec<ClusterSpec> {
    let mut archs = vec![dc(), io(), hy1(), hy2()];

    // A05: graded CPU powers, ample memory (pure load-balance problem).
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.cpu_power = 0.6 + 0.2 * i as f64;
        n.memory_bytes = LARGE_MEMORY;
    }
    archs.push(cluster("A05-gradedcpu", nodes));

    // A06: single very slow node.
    let mut nodes = base_nodes();
    for n in &mut nodes {
        n.memory_bytes = LARGE_MEMORY;
    }
    nodes[3].cpu_power = 0.25;
    archs.push(cluster("A06-onesnail", nodes));

    // A07: alternating small memories, uniform CPU.
    let mut nodes = base_nodes();
    for n in nodes.iter_mut().step_by(2) {
        n.memory_bytes = SMALL_MEMORY;
    }
    archs.push(cluster("A07-altmem", nodes));

    // A08: two nodes with tiny memory and very slow disks.
    let mut nodes = base_nodes();
    for n in &mut nodes[..2] {
        n.memory_bytes = SMALL_MEMORY;
        *n = n.clone().with_io_factor(6.0);
    }
    archs.push(cluster("A08-2slowdisk", nodes));

    // A09: graded disks (each node slower than the last), baseline mem.
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        *n = n.clone().with_io_factor(0.5 + 0.5 * i as f64);
        n.memory_bytes = 128 * 1024;
    }
    archs.push(cluster("A09-gradeddisk", nodes));

    // A10: fast CPUs paired with small memories (compute vs I/O tension).
    let mut nodes = base_nodes();
    for n in &mut nodes[4..] {
        n.cpu_power = 2.0;
        n.memory_bytes = SMALL_MEMORY;
    }
    archs.push(cluster("A10-fastsmall", nodes));

    // A11: slow CPUs paired with large memories.
    let mut nodes = base_nodes();
    for n in &mut nodes[..4] {
        n.cpu_power = 0.5;
        n.memory_bytes = LARGE_MEMORY;
    }
    archs.push(cluster("A11-slowlarge", nodes));

    // A12: uniformly memory-starved cluster (everything out of core).
    let mut nodes = base_nodes();
    for n in &mut nodes {
        n.memory_bytes = SMALL_MEMORY;
    }
    archs.push(cluster("A12-allooc", nodes));

    // A13: one node with everything wrong (slow CPU, slow disk, tiny mem).
    let mut nodes = base_nodes();
    nodes[7].cpu_power = 0.4;
    nodes[7].memory_bytes = SMALL_MEMORY;
    nodes[7] = nodes[7].clone().with_io_factor(4.0);
    archs.push(cluster("A13-onebad", nodes));

    // A14: mild heterogeneity on all three axes.
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.cpu_power = 0.9 + 0.05 * i as f64;
        n.memory_bytes = BASE_MEMORY - 56 * 1024 * i as u64;
        *n = n.clone().with_io_factor(1.0 + 0.15 * i as f64);
    }
    archs.push(cluster("A14-mild", nodes));

    // A15: strong bimodal CPU split, ample memory.
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.cpu_power = if i < 4 { 0.5 } else { 2.0 };
        n.memory_bytes = LARGE_MEMORY;
    }
    archs.push(cluster("A15-bimodal", nodes));

    // A16: heterogeneous disks only (uniform CPU, baseline memory).
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        *n = n.clone().with_io_factor(if i % 2 == 0 { 0.5 } else { 2.5 });
        n.memory_bytes = 96 * 1024;
    }
    archs.push(cluster("A16-diskonly", nodes));

    // A17: hybrid — graded CPUs with graded, inverted memory (fastest
    // node has the least memory).
    let mut nodes = base_nodes();
    for (i, n) in nodes.iter_mut().enumerate() {
        n.cpu_power = 0.7 + 0.2 * i as f64;
        n.memory_bytes = BASE_MEMORY
            .saturating_sub(56 * 1024 * i as u64)
            .max(SMALL_MEMORY);
    }
    archs.push(cluster("A17-inverted", nodes));

    assert_eq!(archs.len(), 17);
    archs
}

/// The twelve architectures reused for the prefetching experiment
/// (Figure 9, top right): the subset of the seventeen in which at least
/// one node is memory-restricted, so prefetching has latency to hide.
#[must_use]
pub fn twelve_prefetch_architectures() -> Vec<ClusterSpec> {
    let picked: Vec<ClusterSpec> = seventeen_architectures()
        .into_iter()
        .filter(|a| a.nodes.iter().any(|n| n.memory_bytes <= 2 * SMALL_MEMORY))
        .collect();
    assert!(
        picked.len() >= 12,
        "need at least 12 memory-restricted architectures, got {}",
        picked.len()
    );
    picked.into_iter().take(12).collect()
}

/// A moderate, deterministic fault profile for robustness experiments:
/// occasional transient disk errors, rare message retransmits, and
/// background-load windows on a 1 ms grain. Rates are low enough that
/// retry-enabled runs always converge, high enough that every fault
/// class fires in a typical application run.
#[must_use]
pub fn standard_fault_profile() -> FaultSpec {
    FaultSpec {
        disk_read_fault_rate: 0.05,
        disk_write_fault_rate: 0.03,
        msg_resend_rate: 0.02,
        slowdown_rate: 0.10,
        slowdown_factor: 1.5,
        slowdown_period_ns: 1.0e6,
        mem_pressure_rate: 0.05,
        mem_pressure_bytes: SMALL_MEMORY / 4,
        ..FaultSpec::default()
    }
}

/// `base` with a single crash-stop failure of `rank` at iteration `it`
/// and checkpointing every `interval` iterations; the name gains a
/// `+crash` suffix so result tables distinguish failure runs.
#[must_use]
pub fn with_crash(mut base: ClusterSpec, rank: usize, it: u32, interval: u32) -> ClusterSpec {
    base.name = format!("{}+crash", base.name);
    base.faults.crashes = vec![crate::fault::CrashSpec::at_iteration(rank, it)];
    base.faults.checkpoint_interval = interval;
    base
}

/// `base` with a single persistent degradation of `rank` by `factor`
/// from iteration `it`; the name gains a `+deg` suffix so result
/// tables distinguish degraded runs.
#[must_use]
pub fn with_degrade(mut base: ClusterSpec, rank: usize, it: u32, factor: f64) -> ClusterSpec {
    base.name = format!("{}+deg", base.name);
    base.faults
        .degrades
        .push(crate::fault::DegradeSpec::at_iteration(rank, it, factor));
    base
}

/// `base` with the given fault profile applied; the name gains a
/// `+flt` suffix so result tables distinguish degraded runs.
#[must_use]
pub fn with_faults(mut base: ClusterSpec, faults: FaultSpec) -> ClusterSpec {
    base.name = format!("{}+flt", base.name);
    base.faults = faults;
    base
}

/// Faulty variants of the four Table 1 configurations, each under the
/// [`standard_fault_profile`].
#[must_use]
pub fn faulty_four() -> Vec<ClusterSpec> {
    [dc(), io(), hy1(), hy2()]
        .into_iter()
        .map(|a| with_faults(a, standard_fault_profile()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_presets_validate() {
        for a in seventeen_architectures() {
            a.validate().unwrap_or_else(|e| panic!("{}: {e}", a.name));
            assert_eq!(a.len(), CLUSTER_NODES);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<String> = seventeen_architectures()
            .into_iter()
            .map(|a| a.name)
            .collect();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn faulty_presets_validate_and_are_marked() {
        for a in faulty_four() {
            a.validate().unwrap_or_else(|e| panic!("{}: {e}", a.name));
            assert!(a.name.ends_with("+flt"), "name {} not marked", a.name);
            assert!(a.faults.any_enabled());
        }
        // Plain presets stay fault-free.
        for a in seventeen_architectures() {
            assert!(!a.faults.any_enabled(), "{} unexpectedly faulty", a.name);
        }
    }

    #[test]
    fn dc_has_cpu_spread_and_no_memory_pressure() {
        let a = dc();
        assert!(!a.uniform_cpu());
        assert!(a.nodes.iter().all(|n| n.memory_bytes >= LARGE_MEMORY));
    }

    #[test]
    fn io_is_cpu_uniform_with_half_restricted() {
        let a = io();
        assert!(a.uniform_cpu());
        let restricted = a
            .nodes
            .iter()
            .filter(|n| n.memory_bytes == SMALL_MEMORY)
            .count();
        assert_eq!(restricted, 4);
    }

    #[test]
    fn hybrids_vary_both_axes() {
        for a in [hy1(), hy2()] {
            assert!(!a.uniform_cpu(), "{} should vary CPU", a.name);
            assert!(
                a.nodes.iter().any(|n| n.memory_bytes <= 2 * SMALL_MEMORY),
                "{} should restrict memory somewhere",
                a.name
            );
        }
    }

    #[test]
    fn prefetch_subset_is_twelve_and_restricted() {
        let archs = twelve_prefetch_architectures();
        assert_eq!(archs.len(), 12);
        for a in &archs {
            assert!(a.nodes.iter().any(|n| n.memory_bytes <= 2 * SMALL_MEMORY));
        }
    }

    #[test]
    fn table1_descriptions_exist() {
        for name in ["DC", "IO", "HY1", "HY2"] {
            assert!(!table1_description(name).is_empty());
            assert!(!table1_description(name).contains("not a Table 1"));
        }
        assert!(table1_description("nope").contains("not a Table 1"));
    }
}
