//! Property tests for the crash-safety story: the `mheta-plancache/v1`
//! snapshot format round-trips bitwise and rejects every corrupted
//! variant as a *value* (cold start, never a crash, never a wrong
//! plan), and the circuit breaker matches a reference state machine
//! under arbitrary event interleavings.

use std::collections::BTreeMap;

use mheta_dist::Strategy as PortfolioStrategy;
use mheta_serve::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use mheta_serve::snapshot::{self, SnapshotError};
use mheta_serve::{Plan, PlanCache};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(0usize..4096, 1..12),
        // Spread across many exponents so the bitwise round-trip sees
        // mantissas a decimal rendering would mangle.
        (1.0e-3f64..1.0e15, 0u8..4, 0usize..1_000_000),
    )
        .prop_map(|(rows, (predicted_ns, winner, total_evals))| Plan {
            rows,
            predicted_ns,
            winner: [
                PortfolioStrategy::Gbs,
                PortfolioStrategy::Genetic,
                PortfolioStrategy::Annealing,
                PortfolioStrategy::Random,
            ][winner as usize],
            total_evals,
        })
}

/// Entries collapse through a BTreeMap so duplicate keys overwrite
/// before insertion (the cache would LRU-overwrite them anyway). Canon
/// strings stay printable ASCII: snapshot fidelity is under test here,
/// not the vendored JSON library's unicode escaping.
fn arb_entries() -> impl Strategy<Value = BTreeMap<u64, (String, Plan)>> {
    let canon = proptest::collection::vec(0x20u8..0x7f, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"));
    proptest::collection::vec((any::<u64>(), canon, arb_plan()), 0..16).prop_map(|list| {
        list.into_iter()
            .map(|(key, canon, plan)| (key, (canon, plan)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Save → parse → restore reproduces every plan bitwise (including
    /// the f64 prediction), and re-snapshotting the restored cache is
    /// byte-identical: the format is a fixed point.
    #[test]
    fn snapshot_round_trips_bitwise(entries in arb_entries()) {
        let cache = PlanCache::new(4, 128);
        for (key, (canon, plan)) in &entries {
            cache.insert(*key, canon, plan.clone());
        }
        let text = snapshot::snapshot_value(&cache).to_json();

        let restored = PlanCache::new(4, 128);
        let parsed = snapshot::parse(&text).expect("own snapshot parses");
        snapshot::restore(&restored, parsed);

        prop_assert_eq!(restored.len(), entries.len());
        for (key, (canon, plan)) in &entries {
            let got = restored.get(*key, canon).expect("entry survived");
            prop_assert_eq!(&got.rows, &plan.rows);
            prop_assert_eq!(got.predicted_ns.to_bits(), plan.predicted_ns.to_bits());
            prop_assert_eq!(&got.winner, &plan.winner);
        }
        let again = snapshot::snapshot_value(&restored).to_json();
        prop_assert_eq!(text, again);
    }

    /// Truncating the file anywhere makes it a rejected value — the
    /// loader never panics and never yields a partial cache. (All
    /// snapshot bytes are ASCII, so any cut lands on a char boundary.)
    #[test]
    fn truncated_snapshots_are_rejected(entries in arb_entries(), frac in 0.0f64..1.0) {
        let cache = PlanCache::new(4, 128);
        for (key, (canon, plan)) in &entries {
            cache.insert(*key, canon, plan.clone());
        }
        let text = snapshot::snapshot_value(&cache).to_json();
        let cut = ((text.len() as f64) * frac) as usize;
        prop_assume!(cut < text.len()); // cutting nothing is the round-trip case
        let truncated = &text[..cut];
        match snapshot::parse(truncated) {
            Err(_) => {}
            Ok(parsed) => prop_assert!(
                false,
                "truncated snapshot accepted with {} entries",
                parsed.len()
            ),
        }
    }

    /// Any single-byte corruption is detected: the text either stops
    /// parsing (`Malformed`/`Schema`) or parses to a payload whose
    /// recomputed checksum no longer matches (`Checksum`). A flip may
    /// leave the text identical only if it maps the byte to itself,
    /// which XOR with a nonzero mask cannot.
    #[test]
    fn bit_flips_are_rejected(entries in arb_entries(), pos in 0.0f64..1.0, mask in 1u8..=127) {
        let cache = PlanCache::new(4, 128);
        for (key, (canon, plan)) in &entries {
            cache.insert(*key, canon, plan.clone());
        }
        let text = snapshot::snapshot_value(&cache).to_json();
        let mut bytes = text.into_bytes();
        let at = (((bytes.len() as f64) * pos) as usize).min(bytes.len() - 1);
        bytes[at] ^= mask;
        let Ok(corrupt) = String::from_utf8(bytes) else {
            return Ok(()); // not UTF-8 at all: read_to_string rejects it upstream
        };
        match snapshot::parse(&corrupt) {
            Err(SnapshotError::Malformed(_))
            | Err(SnapshotError::Schema(_))
            | Err(SnapshotError::Checksum { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected rejection class: {}", other),
            Ok(_) => {
                // The only way corruption parses AND checksums is if the
                // flip landed inside the stored checksum's own hex digits
                // and produced... the same checksum — impossible — OR the
                // flip changed whitespace-insensitive structure that the
                // canonical re-rendering normalises away. Our renderer
                // emits no optional whitespace, so reaching here is a bug.
                prop_assert!(false, "corrupted snapshot accepted");
            }
        }
    }

    /// The breaker tracks a reference state machine under arbitrary
    /// sequences of successes, failures, abandons (a request admitted
    /// but ending with no search verdict), and clock advances.
    #[test]
    fn breaker_matches_reference_model(
        threshold in 1u32..5,
        open_ms in 1u64..50,
        events in proptest::collection::vec(0u8..4, 1..120),
    ) {
        let breaker = CircuitBreaker::new(1, BreakerConfig { failure_threshold: threshold, open_ms });

        // Reference model.
        #[derive(Clone, Copy, Debug, PartialEq)]
        enum Model { Closed { fails: u32 }, Open { until: u64 }, HalfOpen { probing: bool } }
        let mut model = Model::Closed { fails: 0 };
        let mut now: u64 = 0;

        for ev in events {
            match ev {
                0 => {
                    // A request arrives: admit, then succeed if admitted.
                    let admitted = breaker.admit(0, now).is_ok();
                    let model_admits = match model {
                        Model::Closed { .. } => true,
                        Model::Open { until } if now >= until => { model = Model::HalfOpen { probing: true }; true }
                        Model::Open { .. } => false,
                        Model::HalfOpen { probing: false } => { model = Model::HalfOpen { probing: true }; true }
                        Model::HalfOpen { probing: true } => false,
                    };
                    prop_assert_eq!(admitted, model_admits);
                    if admitted {
                        breaker.on_success(0);
                        model = Model::Closed { fails: 0 };
                    }
                }
                1 => {
                    // A request arrives: admit, then fail if admitted.
                    let admitted = breaker.admit(0, now).is_ok();
                    let model_admits = match model {
                        Model::Closed { .. } => true,
                        Model::Open { until } if now >= until => { model = Model::HalfOpen { probing: true }; true }
                        Model::Open { .. } => false,
                        Model::HalfOpen { probing: false } => { model = Model::HalfOpen { probing: true }; true }
                        Model::HalfOpen { probing: true } => false,
                    };
                    prop_assert_eq!(admitted, model_admits);
                    if admitted {
                        breaker.on_failure(0, now);
                        model = match model {
                            Model::Closed { fails } if fails + 1 >= threshold =>
                                Model::Open { until: now + open_ms * 1_000_000 },
                            Model::Closed { fails } => Model::Closed { fails: fails + 1 },
                            _ => Model::Open { until: now + open_ms * 1_000_000 },
                        };
                    }
                }
                2 => {
                    // A request arrives: admit, then abandon if admitted
                    // (shed on a full queue / deadline expired — no
                    // search verdict, but the probe slot is released).
                    let admitted = breaker.admit(0, now).is_ok();
                    let model_admits = match model {
                        Model::Closed { .. } => true,
                        Model::Open { until } if now >= until => { model = Model::HalfOpen { probing: true }; true }
                        Model::Open { .. } => false,
                        Model::HalfOpen { probing: false } => { model = Model::HalfOpen { probing: true }; true }
                        Model::HalfOpen { probing: true } => false,
                    };
                    prop_assert_eq!(admitted, model_admits);
                    if admitted {
                        breaker.on_abandoned(0);
                        if let Model::HalfOpen { probing: true } = model {
                            model = Model::HalfOpen { probing: false };
                        }
                    }
                }
                _ => {
                    // The clock advances past any open window.
                    now += open_ms * 1_000_000 + 1;
                }
            }
            let expect = match model {
                Model::Closed { .. } => BreakerState::Closed,
                Model::Open { until } if now >= until => BreakerState::HalfOpen,
                Model::Open { .. } => BreakerState::Open,
                Model::HalfOpen { .. } => BreakerState::HalfOpen,
            };
            prop_assert_eq!(breaker.state(0, now), expect);
        }
    }
}
