//! Property tests for the canonical stable content hash: the plan
//! cache key must be a pure function of the request's semantic content
//! — invariant under cloning and a JSON round-trip of the canonical
//! rendering, and sensitive to every semantic field.

use mheta_serve::{benchmark_by_name, PlanRequest, SearchParams};
use mheta_sim::{presets, ClusterSpec};
use proptest::prelude::*;

const APPS: [&str; 5] = ["jacobi", "cg", "rna", "lanczos", "multigrid"];

fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    (
        2usize..10,
        0u8..5,
        1_000.0f64..10_000.0,
        0u64..1_000,
        0.0f64..0.2,
    )
        .prop_map(|(n, preset, compute, seed, noise)| {
            let mut spec = match preset {
                0 => presets::dc(),
                1 => presets::io(),
                2 => presets::hy1(),
                3 => presets::hy2(),
                _ => ClusterSpec::homogeneous(n),
            };
            spec.compute_ns_per_unit = compute;
            spec.seed = seed;
            spec.noise.amplitude = noise;
            spec
        })
}

fn arb_request() -> impl Strategy<Value = PlanRequest> {
    (
        arb_spec(),
        0usize..APPS.len(),
        any::<bool>(),
        1u64..1_000,
        8usize..128,
    )
        .prop_map(|(spec, app, prefetch, seed, evals)| {
            let bench = benchmark_by_name(APPS[app], "small").expect("known app");
            let prefetch = prefetch && bench.supports_prefetch();
            PlanRequest {
                bench,
                prefetch,
                spec,
                search: SearchParams {
                    seed,
                    max_evals_per_strategy: evals,
                    ..SearchParams::default()
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn key_is_invariant_under_clone(req in arb_request()) {
        let copy = req.clone();
        prop_assert_eq!(req.key(), copy.key());
        prop_assert_eq!(req.canonical_json(), copy.canonical_json());
    }

    #[test]
    fn key_is_invariant_under_json_round_trip(req in arb_request()) {
        // Parse the canonical rendering and re-render: a stable
        // canonical form must survive its own serialization untouched,
        // so the hash of the round-tripped document is the hash.
        let canon = req.canonical_json();
        let reparsed = mheta_obs::json::from_str(&canon).expect("canonical JSON parses");
        prop_assert_eq!(&reparsed.to_json(), &canon);
        prop_assert_eq!(mheta_serve::fnv1a64(reparsed.to_json().as_bytes()), req.key());
    }

    #[test]
    fn key_changes_when_any_field_changes(req in arb_request()) {
        let base = req.key();

        let mut r = req.clone();
        r.spec.seed ^= 0x1;
        prop_assert!(r.key() != base);

        let mut r = req.clone();
        r.spec.compute_ns_per_unit += 1.0;
        prop_assert!(r.key() != base);

        let mut r = req.clone();
        r.spec.nodes[0].cpu_power += 0.25;
        prop_assert!(r.key() != base);

        let mut r = req.clone();
        r.search.seed ^= 0x1;
        prop_assert!(r.key() != base);

        let mut r = req.clone();
        r.search.max_evals_per_strategy += 1;
        prop_assert!(r.key() != base);

        let mut r = req.clone();
        r.search.target_ns += 1.0;
        prop_assert!(r.key() != base);
    }

    #[test]
    fn distinct_programs_never_share_a_key(
        spec in arb_spec(),
        a in 0usize..APPS.len(),
        b in 0usize..APPS.len(),
    ) {
        prop_assume!(a != b);
        let ra = PlanRequest::new(benchmark_by_name(APPS[a], "small").unwrap(), spec.clone());
        let rb = PlanRequest::new(benchmark_by_name(APPS[b], "small").unwrap(), spec);
        prop_assert!(ra.key() != rb.key());
    }
}
