//! End-to-end service behavior: coalescing, cache identity, admission
//! control, and the TCP wire protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};

use mheta_obs::json::{from_str, Value};
use mheta_serve::{
    benchmark_by_name, wire, PlanError, PlanRequest, Planner, PlannerConfig, SearchParams,
};
use mheta_sim::presets;

fn small_request(seed: u64) -> PlanRequest {
    PlanRequest {
        bench: benchmark_by_name("jacobi", "small").unwrap(),
        prefetch: false,
        spec: presets::dc(),
        search: SearchParams {
            seed,
            max_evals_per_strategy: 24,
            ..SearchParams::default()
        },
    }
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_search() {
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 2,
        ..PlannerConfig::default()
    }));
    // A heavier budget so the search is still in flight when the
    // followers arrive.
    let req = PlanRequest {
        search: SearchParams {
            max_evals_per_strategy: 400,
            ..small_request(11).search
        },
        ..small_request(11)
    };
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let replies: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let planner = Arc::clone(&planner);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                s.spawn(move || {
                    barrier.wait();
                    planner.plan(&req).expect("plan succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // However the threads interleaved, the searches counter proves at
    // most one search ran (a late arrival may hit the cache instead of
    // the flight — still zero extra searches).
    assert_eq!(planner.metrics().searches(), 1, "exactly one search");
    assert_eq!(planner.metrics().requests(), clients as u64);
    let first = &replies[0].plan;
    for r in &replies {
        assert_eq!(&r.plan, first, "all clients share the one result");
    }
}

#[test]
fn cache_hit_is_bitwise_identical_to_a_fresh_search() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(42);

    let fresh = planner.plan(&req).unwrap();
    assert_eq!(fresh.source.name(), "fresh");
    let cached = planner.plan(&req).unwrap();
    assert_eq!(cached.source.name(), "cache");
    assert_eq!(planner.metrics().cache_hits(), 1);

    // Bitwise identity of the cached reply against the fresh one…
    assert_eq!(cached.plan.rows, fresh.plan.rows);
    assert_eq!(
        cached.plan.predicted_ns.to_bits(),
        fresh.plan.predicted_ns.to_bits()
    );
    assert_eq!(cached.key, fresh.key);

    // …and against an independent cache-off planner at the same seed:
    // the cache returns exactly what a fresh search would compute.
    let cold = Planner::new(PlannerConfig {
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    let recomputed = cold.plan(&req).unwrap();
    assert_eq!(recomputed.source.name(), "fresh");
    assert_eq!(recomputed.plan.rows, cached.plan.rows);
    assert_eq!(
        recomputed.plan.predicted_ns.to_bits(),
        cached.plan.predicted_ns.to_bits()
    );
}

#[test]
fn invalidation_forces_a_fresh_search() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(7);
    let a = planner.plan(&req).unwrap();
    assert_eq!(planner.invalidate_cache(), 1);
    let b = planner.plan(&req).unwrap();
    assert_eq!(b.source.name(), "fresh", "invalidation emptied the cache");
    assert_eq!(planner.metrics().searches(), 2);
    assert_eq!(a.plan, b.plan, "same request, same plan");
}

#[test]
fn queue_full_requests_get_structured_shed_errors_not_hangs() {
    // Zero-capacity queue: every admission sheds, deterministically.
    let planner = Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 0,
        cache_enabled: false,
        coalesce_enabled: false,
        retry_after_ms: 75,
        ..PlannerConfig::default()
    });
    let req = small_request(3);
    let err = planner.plan(&req).unwrap_err();
    assert_eq!(err, PlanError::Overloaded { retry_after_ms: 75 });
    assert_eq!(planner.metrics().shed(), 1);
    assert_eq!(planner.metrics().searches(), 0);

    // Under real contention (queue 1, one worker) a burst must split
    // into served and shed — and every call must return.
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    }));
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let planner = Arc::clone(&planner);
                // Distinct seeds so coalescing could not mask queueing
                // even if it were enabled.
                s.spawn(move || planner.plan(&small_request(100 + i)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(PlanError::Overloaded { .. })))
        .count();
    assert_eq!(served + shed, 6, "every request returned");
    assert!(served >= 1, "the admitted request completes");
    assert_eq!(planner.metrics().shed(), shed as u64);
}

#[test]
fn shed_followers_of_a_shed_leader_are_not_stranded() {
    // Coalescing on, zero-capacity queue: the leader sheds and must
    // shed its followers too rather than leaving them waiting.
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 0,
        cache_enabled: false,
        coalesce_enabled: true,
        ..PlannerConfig::default()
    }));
    let req = small_request(5);
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let planner = Arc::clone(&planner);
                let req = req.clone();
                s.spawn(move || planner.plan(&req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for o in &outcomes {
        assert!(
            matches!(o, Err(PlanError::Overloaded { .. })),
            "all requests shed, none hang: {o:?}"
        );
    }
}

#[test]
fn wire_round_trip_plan_cache_stats_and_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let server = std::thread::spawn(move || wire::serve(listener, planner));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut round_trip = |req: &str| -> Value {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        from_str(line.trim_end()).expect("daemon speaks JSON")
    };

    let pong = round_trip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok"), Some(&Value::Bool(true)));

    let plan_line = r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC","search":{"evals":24,"seed":9}}"#;
    let first = round_trip(plan_line);
    assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(first.get("source").unwrap().as_str(), Some("fresh"));
    let rows = first.get("plan").unwrap().get("rows").unwrap();
    assert!(!rows.as_array().unwrap().is_empty());

    let second = round_trip(plan_line);
    assert_eq!(second.get("source").unwrap().as_str(), Some("cache"));
    assert_eq!(
        second.get("plan").unwrap().to_json(),
        first.get("plan").unwrap().to_json(),
        "cached reply is byte-identical"
    );

    let stats = round_trip(r#"{"op":"stats"}"#);
    let service = stats.get("stats").unwrap().get("service").unwrap();
    let counters = service.get("counters").unwrap();
    assert_eq!(counters.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("searches").unwrap().as_u64(), Some(1));

    let bad = round_trip(r#"{"op":"plan","app":{"name":"zzz"},"arch":"DC"}"#);
    assert_eq!(bad.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        bad.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_request")
    );

    let inval = round_trip(r#"{"op":"invalidate"}"#);
    assert_eq!(inval.get("invalidated").unwrap().as_u64(), Some(1));

    let bye = round_trip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));
    server.join().unwrap().unwrap();
}

#[test]
fn perfetto_request_track_covers_the_lifecycle() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(13);
    planner.plan(&req).unwrap();
    planner.plan(&req).unwrap();
    let json = planner.metrics().perfetto_json();
    let v = from_str(&json).unwrap();
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let slices: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .collect();
    // One fresh request (with a search slice and one slice per
    // portfolio strategy thread) plus one cache hit.
    let on_tid = |tid: u64| {
        slices
            .iter()
            .filter(|e| e.get("tid").unwrap().as_u64() == Some(tid))
            .count()
    };
    assert_eq!(on_tid(0), 2, "request track: one fresh, one cache hit");
    assert!(
        on_tid(1) >= 2,
        "search track: the search slice plus per-strategy slices"
    );
    assert!(json.contains("\"fresh\""));
    assert!(json.contains("\"cache\""));
    // Every request slice carries its trace identity.
    for e in slices
        .iter()
        .filter(|e| e.get("tid").unwrap().as_u64() == Some(0))
    {
        let args = e.get("args").unwrap();
        let trace = args.get("trace_id").unwrap().as_str().unwrap();
        assert_eq!(trace.len(), 16, "hex trace id: {trace}");
    }
}

#[test]
fn wire_round_trip_metrics_and_dump() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let server = std::thread::spawn(move || wire::serve(listener, planner));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut round_trip = |req: &str| -> Value {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        from_str(line.trim_end()).expect("daemon speaks JSON")
    };

    // One traced plan so the telemetry has something to show.
    let reply = round_trip(
        r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC","search":{"evals":24,"seed":4},"trace":{"trace_id":"00c0ffee00c0ffee","span_id":"1"}}"#,
    );
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(
        reply.get("trace_id").unwrap().as_str(),
        Some("00c0ffee00c0ffee"),
        "the reply echoes the propagated trace"
    );

    // `metrics` returns a well-formed Prometheus exposition.
    let metrics = round_trip(r#"{"op":"metrics"}"#);
    assert_eq!(metrics.get("ok"), Some(&Value::Bool(true)));
    let text = metrics.get("prometheus").unwrap().as_str().unwrap();
    assert!(text.contains("# TYPE mheta_serve_requests_total counter"));
    assert!(text.contains("mheta_serve_requests_total{source=\"fresh\"} 1"));
    assert!(text.contains("# TYPE mheta_serve_stage_seconds histogram"));
    assert!(text.contains("mheta_serve_stage_seconds_sum"));
    assert!(text.contains("mheta_serve_stage_seconds_count"));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.contains("mheta_serve_cache_misses_total 1"));
    assert!(text.contains("mheta_serve_flight_written_total"));

    // `dump` returns the flight-recorder document, and the trace we
    // propagated identifies this request's lifecycle events in it.
    let dump = round_trip(r#"{"op":"dump"}"#);
    assert_eq!(dump.get("ok"), Some(&Value::Bool(true)));
    let flight = dump.get("flight").unwrap();
    assert_eq!(
        flight.get("schema").unwrap().as_str(),
        Some("mheta-flight/v1")
    );
    let events = flight.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    let kinds: Vec<&str> = events
        .iter()
        .filter(|e| e.get("trace_id").map(Value::as_str) == Some(Some("00c0ffee00c0ffee")))
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    assert!(kinds.contains(&"request.received"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"cache.miss"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"search.done"), "kinds: {kinds:?}");

    let bye = round_trip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));
    server.join().unwrap().unwrap();
}

#[test]
fn one_trace_id_connects_reply_spans_recorder_and_perfetto() {
    use mheta_obs::TraceContext;

    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(21);
    let ctx = TraceContext::root();

    let reply = planner.plan_traced(&req, ctx).unwrap();
    assert_eq!(
        reply.trace.trace_id, ctx.trace_id,
        "reply carries the trace"
    );

    // The request span on the metrics track carries the same trace.
    let spans = planner.metrics().spans();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].trace_id, ctx.trace_id);
    assert!(
        !spans[0].strategies.is_empty(),
        "fresh request records per-strategy sub-spans"
    );

    // The flight recorder saw the full lifecycle under that trace.
    let dump = planner.flight_dump();
    let hex = ctx.trace_hex();
    let traced: Vec<&str> = dump
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e.get("trace_id").map(Value::as_str) == Some(Some(hex.as_str())))
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    assert!(traced.contains(&"request.received"));
    assert!(traced.contains(&"search.done"));

    // And the Perfetto export names the trace on its slices.
    let perfetto = planner.metrics().perfetto_json();
    assert!(perfetto.contains(&hex), "trace id visible in Perfetto");

    // A coalesced follower links to the leader's trace: simulate by
    // serving the same request again from cache (link is exercised in
    // the coalescing test; here assert the cache path keeps its own
    // trace identity).
    let ctx2 = TraceContext::root();
    let cached = planner.plan_traced(&req, ctx2).unwrap();
    assert_eq!(cached.source.name(), "cache");
    assert_eq!(cached.trace.trace_id, ctx2.trace_id);
}

#[test]
fn coalesced_followers_link_to_the_leader_trace() {
    use mheta_obs::{RequestSource, TraceContext};

    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 2,
        cache_enabled: false,
        ..PlannerConfig::default()
    }));
    let req = PlanRequest {
        search: SearchParams {
            max_evals_per_strategy: 400,
            ..small_request(31).search
        },
        ..small_request(31)
    };
    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    std::thread::scope(|s| {
        for _ in 0..clients {
            let planner = Arc::clone(&planner);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            s.spawn(move || {
                barrier.wait();
                planner.plan_traced(&req, TraceContext::root()).unwrap()
            });
        }
    });

    let spans = planner.metrics().spans();
    let leader: Vec<_> = spans
        .iter()
        .filter(|s| s.source == RequestSource::Fresh)
        .collect();
    let followers: Vec<_> = spans
        .iter()
        .filter(|s| s.source == RequestSource::Coalesced)
        .collect();
    assert_eq!(leader.len(), 1, "one leader");
    assert!(!followers.is_empty(), "budget big enough to coalesce");
    for f in &followers {
        assert_eq!(
            f.link_trace_id, leader[0].trace_id,
            "every follower links the leader's trace"
        );
        assert_ne!(f.trace_id, leader[0].trace_id, "but keeps its own");
    }

    // Perfetto renders the coalition as flow events bound by the
    // leader's trace id.
    let perfetto = planner.metrics().perfetto_json();
    let v = from_str(&perfetto).unwrap();
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let flows_out = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
        .count();
    let flows_in = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("f"))
        .count();
    assert_eq!(flows_out, 1, "one flow start at the leader");
    assert_eq!(flows_in, followers.len(), "one flow finish per follower");
}
