//! End-to-end service behavior: coalescing, cache identity, admission
//! control, and the TCP wire protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};

use mheta_obs::json::{from_str, Value};
use mheta_serve::{
    benchmark_by_name, wire, PlanError, PlanRequest, Planner, PlannerConfig, SearchParams,
};
use mheta_sim::presets;

fn small_request(seed: u64) -> PlanRequest {
    PlanRequest {
        bench: benchmark_by_name("jacobi", "small").unwrap(),
        prefetch: false,
        spec: presets::dc(),
        search: SearchParams {
            seed,
            max_evals_per_strategy: 24,
            ..SearchParams::default()
        },
    }
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_search() {
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 2,
        ..PlannerConfig::default()
    }));
    // A heavier budget so the search is still in flight when the
    // followers arrive.
    let req = PlanRequest {
        search: SearchParams {
            max_evals_per_strategy: 400,
            ..small_request(11).search
        },
        ..small_request(11)
    };
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let replies: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let planner = Arc::clone(&planner);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                s.spawn(move || {
                    barrier.wait();
                    planner.plan(&req).expect("plan succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // However the threads interleaved, the searches counter proves at
    // most one search ran (a late arrival may hit the cache instead of
    // the flight — still zero extra searches).
    assert_eq!(planner.metrics().searches(), 1, "exactly one search");
    assert_eq!(planner.metrics().requests(), clients as u64);
    let first = &replies[0].plan;
    for r in &replies {
        assert_eq!(&r.plan, first, "all clients share the one result");
    }
}

#[test]
fn cache_hit_is_bitwise_identical_to_a_fresh_search() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(42);

    let fresh = planner.plan(&req).unwrap();
    assert_eq!(fresh.source.name(), "fresh");
    let cached = planner.plan(&req).unwrap();
    assert_eq!(cached.source.name(), "cache");
    assert_eq!(planner.metrics().cache_hits(), 1);

    // Bitwise identity of the cached reply against the fresh one…
    assert_eq!(cached.plan.rows, fresh.plan.rows);
    assert_eq!(
        cached.plan.predicted_ns.to_bits(),
        fresh.plan.predicted_ns.to_bits()
    );
    assert_eq!(cached.key, fresh.key);

    // …and against an independent cache-off planner at the same seed:
    // the cache returns exactly what a fresh search would compute.
    let cold = Planner::new(PlannerConfig {
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    let recomputed = cold.plan(&req).unwrap();
    assert_eq!(recomputed.source.name(), "fresh");
    assert_eq!(recomputed.plan.rows, cached.plan.rows);
    assert_eq!(
        recomputed.plan.predicted_ns.to_bits(),
        cached.plan.predicted_ns.to_bits()
    );
}

#[test]
fn invalidation_forces_a_fresh_search() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(7);
    let a = planner.plan(&req).unwrap();
    assert_eq!(planner.invalidate_cache(), 1);
    let b = planner.plan(&req).unwrap();
    assert_eq!(b.source.name(), "fresh", "invalidation emptied the cache");
    assert_eq!(planner.metrics().searches(), 2);
    assert_eq!(a.plan, b.plan, "same request, same plan");
}

#[test]
fn queue_full_requests_get_structured_shed_errors_not_hangs() {
    // Zero-capacity queue: every admission sheds, deterministically.
    let planner = Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 0,
        cache_enabled: false,
        coalesce_enabled: false,
        retry_after_ms: 75,
        ..PlannerConfig::default()
    });
    let req = small_request(3);
    let err = planner.plan(&req).unwrap_err();
    assert_eq!(err, PlanError::Overloaded { retry_after_ms: 75 });
    assert_eq!(planner.metrics().shed(), 1);
    assert_eq!(planner.metrics().searches(), 0);

    // Under real contention (queue 1, one worker) a burst must split
    // into served and shed — and every call must return.
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    }));
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let planner = Arc::clone(&planner);
                // Distinct seeds so coalescing could not mask queueing
                // even if it were enabled.
                s.spawn(move || planner.plan(&small_request(100 + i)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(PlanError::Overloaded { .. })))
        .count();
    assert_eq!(served + shed, 6, "every request returned");
    assert!(served >= 1, "the admitted request completes");
    assert_eq!(planner.metrics().shed(), shed as u64);
}

#[test]
fn shed_followers_of_a_shed_leader_are_not_stranded() {
    // Coalescing on, zero-capacity queue: the leader sheds and must
    // shed its followers too rather than leaving them waiting.
    let planner = Arc::new(Planner::new(PlannerConfig {
        workers: 1,
        queue_capacity: 0,
        cache_enabled: false,
        coalesce_enabled: true,
        ..PlannerConfig::default()
    }));
    let req = small_request(5);
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let planner = Arc::clone(&planner);
                let req = req.clone();
                s.spawn(move || planner.plan(&req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for o in &outcomes {
        assert!(
            matches!(o, Err(PlanError::Overloaded { .. })),
            "all requests shed, none hang: {o:?}"
        );
    }
}

#[test]
fn wire_round_trip_plan_cache_stats_and_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let server = std::thread::spawn(move || wire::serve(listener, planner));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut round_trip = |req: &str| -> Value {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        from_str(line.trim_end()).expect("daemon speaks JSON")
    };

    let pong = round_trip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok"), Some(&Value::Bool(true)));

    let plan_line = r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC","search":{"evals":24,"seed":9}}"#;
    let first = round_trip(plan_line);
    assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(first.get("source").unwrap().as_str(), Some("fresh"));
    let rows = first.get("plan").unwrap().get("rows").unwrap();
    assert!(!rows.as_array().unwrap().is_empty());

    let second = round_trip(plan_line);
    assert_eq!(second.get("source").unwrap().as_str(), Some("cache"));
    assert_eq!(
        second.get("plan").unwrap().to_json(),
        first.get("plan").unwrap().to_json(),
        "cached reply is byte-identical"
    );

    let stats = round_trip(r#"{"op":"stats"}"#);
    let service = stats.get("stats").unwrap().get("service").unwrap();
    let counters = service.get("counters").unwrap();
    assert_eq!(counters.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("searches").unwrap().as_u64(), Some(1));

    let bad = round_trip(r#"{"op":"plan","app":{"name":"zzz"},"arch":"DC"}"#);
    assert_eq!(bad.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        bad.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_request")
    );

    let inval = round_trip(r#"{"op":"invalidate"}"#);
    assert_eq!(inval.get("invalidated").unwrap().as_u64(), Some(1));

    let bye = round_trip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));
    server.join().unwrap().unwrap();
}

#[test]
fn perfetto_request_track_covers_the_lifecycle() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(13);
    planner.plan(&req).unwrap();
    planner.plan(&req).unwrap();
    let json = planner.metrics().perfetto_json();
    let v = from_str(&json).unwrap();
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let slices: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .collect();
    // One fresh request (with a search slice) plus one cache hit.
    assert_eq!(slices.len(), 3);
    assert!(json.contains("\"fresh\""));
    assert!(json.contains("\"cache\""));
}
