//! Request-lifecycle hardening, end to end: deadlines (degraded
//! incumbents vs true expiry), the per-shard circuit breaker, graceful
//! drain over the wire, and crash-safe snapshot warm starts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mheta_obs::json::{from_str, Value};
use mheta_obs::TraceContext;
use mheta_serve::{
    benchmark_by_name, snapshot, wire, BreakerState, Lifecycle, PlanError, PlanRequest, Planner,
    PlannerConfig, SearchParams, ServeConfig,
};
use mheta_sim::presets;

fn small_request(seed: u64) -> PlanRequest {
    PlanRequest {
        bench: benchmark_by_name("jacobi", "small").unwrap(),
        prefetch: false,
        spec: presets::dc(),
        search: SearchParams {
            seed,
            max_evals_per_strategy: 24,
            ..SearchParams::default()
        },
    }
}

/// A request whose search budget is far larger than any test deadline,
/// so a deadline reliably expires mid-search.
fn huge_request(seed: u64) -> PlanRequest {
    PlanRequest {
        search: SearchParams {
            max_evals_per_strategy: 1_000_000,
            ..small_request(seed).search
        },
        ..small_request(seed)
    }
}

/// A request whose model construction always fails (negative CPU
/// power fails `ClusterSpec` validation), deterministically producing
/// `PlanError::Search`.
fn doomed_request(seed: u64) -> PlanRequest {
    let mut req = small_request(seed);
    req.spec.nodes[0].cpu_power = -1.0;
    req
}

#[test]
fn mid_search_deadline_returns_the_incumbent_flagged_degraded() {
    let planner = Planner::new(PlannerConfig::default());
    let req = huge_request(17);
    let reply = planner
        .plan_opts(&req, TraceContext::root(), Some(Duration::from_millis(30)))
        .expect("an incumbent exists by the time the deadline fires");
    assert!(reply.degraded, "deadline interrupted the full budget");
    assert_eq!(reply.source.name(), "fresh");
    assert!(!reply.plan.rows.is_empty());
    assert!(reply.plan.predicted_ns.is_finite());
    assert_eq!(planner.metrics().degraded(), 1);
    // Degraded plans must never poison the cache.
    assert_eq!(
        planner.cache().len(),
        0,
        "partial-budget incumbent was cached"
    );
}

#[test]
fn expired_deadline_with_no_incumbent_is_a_structured_error() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(23);
    // A zero budget has expired by the time the job dequeues: the
    // worker refuses to search and no incumbent can exist.
    let err = planner
        .plan_opts(&req, TraceContext::root(), Some(Duration::ZERO))
        .unwrap_err();
    assert_eq!(err, PlanError::DeadlineExceeded { budget_ms: 0 });
    assert_eq!(planner.metrics().deadline_exceeded(), 1);
    assert_eq!(
        planner.metrics().searches(),
        0,
        "no worker time burned on an expired request"
    );
}

#[test]
fn deadline_does_not_change_the_cache_key() {
    let planner = Planner::new(PlannerConfig::default());
    let req = small_request(29);
    let fresh = planner.plan(&req).unwrap();
    // The same request WITH a (generous) deadline still hits the cache.
    let cached = planner
        .plan_opts(&req, TraceContext::root(), Some(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(cached.source.name(), "cache");
    assert_eq!(cached.key, fresh.key);
    assert!(!cached.degraded);
}

#[test]
fn consecutive_search_failures_trip_the_breaker_and_shed_fast() {
    let planner = Planner::new(PlannerConfig {
        breaker_threshold: 3,
        breaker_open_ms: 60_000,
        cache_shards: 1, // one shard: every key shares the breaker
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    let req = doomed_request(1);
    for i in 0..3 {
        let err = planner.plan(&req).unwrap_err();
        assert!(
            matches!(err, PlanError::Search(_)),
            "attempt {i} fails the search itself: {err}"
        );
    }
    assert_eq!(planner.breaker().trips(), 1);
    // The fourth request sheds fast — no search, structured backoff.
    let searches_before = planner.metrics().searches();
    let err = planner.plan(&req).unwrap_err();
    let PlanError::CircuitOpen { retry_after_ms } = err else {
        panic!("expected CircuitOpen, got {err}");
    };
    assert!(retry_after_ms > 0 && retry_after_ms <= 60_000);
    assert_eq!(planner.metrics().searches(), searches_before);
    assert_eq!(planner.breaker().fast_fails(), 1);
    // Shard granularity: a healthy request on the same (only) shard is
    // shed by association while the breaker is open.
    let err = planner.plan(&small_request(2)).unwrap_err();
    assert!(matches!(err, PlanError::CircuitOpen { .. }), "{err}");
}

#[test]
fn half_open_probe_success_closes_the_breaker() {
    let planner = Planner::new(PlannerConfig {
        breaker_threshold: 2,
        breaker_open_ms: 0, // the window expires immediately: next admit probes
        cache_shards: 1,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    let bad = doomed_request(3);
    for _ in 0..2 {
        let _ = planner.plan(&bad).unwrap_err();
    }
    assert_eq!(planner.breaker().trips(), 1);
    // The next request is the half-open probe; it is healthy, so it
    // runs and closes the breaker.
    let reply = planner.plan(&small_request(4)).unwrap();
    assert_eq!(reply.source.name(), "fresh");
    assert_eq!(planner.breaker().closes(), 1);
    assert_eq!(
        planner.breaker().state(0, planner.metrics().now_ns()),
        BreakerState::Closed
    );
    assert_eq!(planner.breaker().probes(), 1);
}

#[test]
fn shed_probe_releases_the_breaker_slot() {
    let planner = Planner::new(PlannerConfig {
        breaker_threshold: 1,
        breaker_open_ms: 0, // the window expires immediately: next admit probes
        queue_capacity: 0,  // every admission sheds
        cache_shards: 1,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    // Trip the only shard directly; the zero window has already expired.
    planner.breaker().on_failure(0, planner.metrics().now_ns());
    // The next request is admitted as the half-open probe, then shed on
    // the full queue before any search runs. The probe slot must be
    // released: without it the shard would answer CircuitOpen forever.
    let err = planner.plan(&small_request(41)).unwrap_err();
    assert!(matches!(err, PlanError::Overloaded { .. }), "{err}");
    let err = planner.plan(&small_request(42)).unwrap_err();
    assert!(
        matches!(err, PlanError::Overloaded { .. }),
        "probe slot leaked: {err}"
    );
}

#[test]
fn deadline_expired_probe_releases_the_breaker_slot() {
    let planner = Planner::new(PlannerConfig {
        breaker_threshold: 1,
        breaker_open_ms: 0,
        cache_shards: 1,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    planner.breaker().on_failure(0, planner.metrics().now_ns());
    // The probe's zero budget expires while queued: it ends with
    // DeadlineExceeded — no verdict on shard health, but the slot must
    // come back.
    let err = planner
        .plan_opts(
            &small_request(43),
            TraceContext::root(),
            Some(Duration::ZERO),
        )
        .unwrap_err();
    assert_eq!(err, PlanError::DeadlineExceeded { budget_ms: 0 });
    // The shard recovers through the next (healthy) probe instead of
    // fast-failing until restart.
    let reply = planner.plan(&small_request(44)).unwrap();
    assert_eq!(reply.source.name(), "fresh");
    assert_eq!(
        planner.breaker().state(0, planner.metrics().now_ns()),
        BreakerState::Closed
    );
}

#[test]
fn deadline_free_follower_of_a_degraded_flight_is_not_degraded() {
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    // Big enough that the full search far outlasts the leader's 15 ms
    // deadline, small enough that the follower's full-budget re-run
    // stays test-sized.
    let req = PlanRequest {
        search: SearchParams {
            max_evals_per_strategy: 50_000,
            ..small_request(47).search
        },
        ..small_request(47)
    };
    let leader = {
        let planner = Arc::clone(&planner);
        let req = req.clone();
        std::thread::spawn(move || {
            planner.plan_opts(&req, TraceContext::root(), Some(Duration::from_millis(15)))
        })
    };
    // Join the flight once the leader's search is actually running.
    while planner.metrics().searches() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let follower = planner.plan(&req).unwrap();
    let leader_reply = leader.join().unwrap().unwrap();
    assert!(leader_reply.degraded, "leader's deadline cut its search");
    // The follower never opted into a deadline: inheriting the
    // leader's partial-budget incumbent would silently short-change
    // it. It must come back with a full-budget (or cached) answer.
    assert!(
        !follower.degraded,
        "full-budget caller received a degraded plan"
    );
    assert!(follower.plan.predicted_ns.is_finite());
}

#[test]
fn wire_deadline_zero_returns_the_deadline_error_kind() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let server = std::thread::spawn(move || wire::serve(listener, planner));

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut round_trip = |req: &str| -> Value {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        from_str(line.trim_end()).expect("daemon speaks JSON")
    };

    let v = round_trip(
        r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC","deadline_ms":0,"search":{"evals":24,"seed":5}}"#,
    );
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    let error = v.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("deadline"));
    assert_eq!(error.get("budget_ms").unwrap().as_u64(), Some(0));

    let bye = round_trip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));
    server.join().unwrap().unwrap();
}

#[test]
fn drain_sheds_new_plans_finishes_inflight_and_exits() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let lifecycle = Arc::new(Lifecycle::new());
    let server = {
        let planner = Arc::clone(&planner);
        let lifecycle = Arc::clone(&lifecycle);
        std::thread::spawn(move || {
            wire::serve_with(
                listener,
                planner,
                lifecycle,
                ServeConfig {
                    drain_deadline_ms: 5_000,
                    ..ServeConfig::default()
                },
            )
        })
    };

    // Connection A: a slow plan (huge budget, bounded by its own
    // deadline) that is still in flight when the drain begins.
    let slow = TcpStream::connect(addr).unwrap();
    let mut slow_writer = slow.try_clone().unwrap();
    writeln!(
        slow_writer,
        r#"{{"op":"plan","app":{{"name":"jacobi","size":"small"}},"arch":"DC","deadline_ms":500,"search":{{"evals":1000000,"seed":6}}}}"#
    )
    .unwrap();
    slow_writer.flush().unwrap();
    // Let it reach the planner before draining.
    while lifecycle.in_flight() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    lifecycle.begin_drain();

    // Connection B: a new plan is shed with the structured draining
    // error, but control ops still work.
    let b = TcpStream::connect(addr).unwrap();
    let mut b_writer = b.try_clone().unwrap();
    let mut b_reader = BufReader::new(b);
    let mut round_trip = |req: &str| -> Value {
        writeln!(b_writer, "{req}").unwrap();
        b_writer.flush().unwrap();
        let mut line = String::new();
        b_reader.read_line(&mut line).unwrap();
        from_str(line.trim_end()).expect("daemon speaks JSON")
    };
    let shed = round_trip(
        r#"{"op":"plan","app":{"name":"cg","size":"small"},"arch":"DC","search":{"evals":24,"seed":7}}"#,
    );
    assert_eq!(shed.get("ok"), Some(&Value::Bool(false)));
    let error = shed.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("draining"));
    assert!(error.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
    let stats = round_trip(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("ok"),
        Some(&Value::Bool(true)),
        "control ops served during drain"
    );

    // The in-flight request finishes with an answer (its own deadline
    // degrades it rather than the drain killing it).
    let mut slow_line = String::new();
    BufReader::new(slow).read_line(&mut slow_line).unwrap();
    let slow_reply = from_str(slow_line.trim_end()).unwrap();
    assert_eq!(slow_reply.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(slow_reply.get("degraded"), Some(&Value::Bool(true)));

    // And the accept loop exits once in-flight hits zero.
    server.join().unwrap().unwrap();
    assert_eq!(lifecycle.in_flight(), 0);
}

#[test]
fn idle_connections_time_out_cleanly() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let lifecycle = Arc::new(Lifecycle::new());
    let server = {
        let planner = Arc::clone(&planner);
        let lifecycle = Arc::clone(&lifecycle);
        std::thread::spawn(move || {
            wire::serve_with(
                listener,
                planner,
                lifecycle,
                ServeConfig {
                    read_timeout_ms: 100,
                    ..ServeConfig::default()
                },
            )
        })
    };

    // A half-open client: connects, sends nothing. The daemon must
    // drop it after the read timeout instead of pinning a thread.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    let n = idle.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server closed the idle connection");

    // The daemon is still fully alive for real clients.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"ping"}}"#).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let pong = from_str(line.trim_end()).unwrap();
    assert_eq!(pong.get("ok"), Some(&Value::Bool(true)));

    lifecycle.begin_drain();
    server.join().unwrap().unwrap();
}

#[test]
fn snapshot_warm_start_serves_the_first_request_from_cache() {
    let dir = std::env::temp_dir().join(format!("mheta-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plancache.json");

    // First "boot": plan, then snapshot on the way down.
    let first = Planner::new(PlannerConfig::default());
    let req = small_request(37);
    let fresh = first.plan(&req).unwrap();
    assert_eq!(fresh.source.name(), "fresh");
    assert_eq!(first.save_snapshot(&path).unwrap(), 1);

    // Second "boot": warm-start, and the same request is a cache hit
    // with a bitwise-identical plan — no search runs.
    let second = Planner::new(PlannerConfig::default());
    assert_eq!(second.load_snapshot(&path).unwrap(), 1);
    let warm = second.plan(&req).unwrap();
    assert_eq!(warm.source.name(), "cache");
    assert_eq!(warm.plan.rows, fresh.plan.rows);
    assert_eq!(
        warm.plan.predicted_ns.to_bits(),
        fresh.plan.predicted_ns.to_bits()
    );
    assert_eq!(second.metrics().searches(), 0);

    // Corrupt the file: the next boot rejects it as a value and cold
    // starts — never a crash, never a wrong plan.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen(":", ";", 1)).unwrap();
    let third = Planner::new(PlannerConfig::default());
    let err = third.load_snapshot(&path).unwrap_err();
    assert!(
        matches!(err, snapshot::SnapshotError::Malformed(_)),
        "{err}"
    );
    let cold = third.plan(&req).unwrap();
    assert_eq!(cold.source.name(), "fresh");

    let _ = std::fs::remove_dir_all(&dir);
}
