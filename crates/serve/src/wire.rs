//! JSON-lines wire protocol and the TCP daemon loop.
//!
//! One request per line, one response per line; both sides are plain
//! JSON rendered and parsed by the shared `mheta_obs::json` machinery
//! (there is no second JSON implementation, and thus no second
//! escaping routine, anywhere in the workspace).
//!
//! Requests:
//!
//! ```json
//! {"op":"ping"}
//! {"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
//!  "prefetch":false,"search":{"evals":64,"seed":7}}
//! {"op":"stats"}
//! {"op":"invalidate"}
//! {"op":"shutdown"}
//! ```
//!
//! `arch` is a preset name (`DC`, `IO`, `HY1`, `HY2`) or `HOM<n>` for
//! a homogeneous `n`-node cluster. The optional `search` object takes
//! `evals` (per-strategy budget), `retries`, `seed`, `total_evals`,
//! `stall`, and `target_ns`.
//!
//! A successful plan reply carries `"source"` — `"fresh"`, `"cache"`,
//! or `"coalesced"` — so clients (and the CI smoke test) can verify
//! cache behavior. A shed request gets
//! `{"ok":false,"error":{"kind":"overloaded","retry_after_ms":N}}`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mheta_obs::json::{self, from_str, opt_f64_field, opt_u64_field, str_field, Value};

use crate::planner::{PlanError, PlanReply, Planner};
use crate::request::{benchmark_by_name, cluster_by_name, PlanRequest, SearchParams};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum WireOp {
    /// Plan an application on a cluster.
    Plan(Box<PlanRequest>),
    /// Report service, cache, and executor statistics.
    Stats,
    /// Drop every cached plan.
    Invalidate,
    /// Liveness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// Parse one request line into a [`WireOp`].
pub fn parse_request(line: &str) -> Result<WireOp, String> {
    let v = from_str(line).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let op = str_field(&v, "op").map_err(|e| e.to_string())?;
    match op {
        "ping" => Ok(WireOp::Ping),
        "stats" => Ok(WireOp::Stats),
        "invalidate" => Ok(WireOp::Invalidate),
        "shutdown" => Ok(WireOp::Shutdown),
        "plan" => Ok(WireOp::Plan(Box::new(parse_plan(&v)?))),
        other => Err(format!("unknown op `{other}`")),
    }
}

fn parse_plan(v: &Value) -> Result<PlanRequest, String> {
    let app = json::field(v, "app").map_err(|e| e.to_string())?;
    let name = str_field(app, "name").map_err(|e| format!("app.{e}"))?;
    let size = json::opt_str_field(app, "size")
        .map_err(|e| format!("app.{e}"))?
        .unwrap_or("small");
    let bench = benchmark_by_name(name, size)
        .ok_or_else(|| format!("unknown app `{name}` (size `{size}`)"))?;

    let arch = str_field(v, "arch").map_err(|e| e.to_string())?;
    let spec = cluster_by_name(arch)
        .ok_or_else(|| format!("unknown arch `{arch}` (want DC, IO, HY1, HY2, or HOM<n>)"))?;

    let prefetch = match v.get("prefetch") {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("field `prefetch`: expected boolean".into()),
    };

    let mut search = SearchParams::default();
    if let Some(s) = v.get("search") {
        if let Some(e) = opt_u64_field(s, "evals").map_err(|e| format!("search.{e}"))? {
            search.max_evals_per_strategy = e as usize;
        }
        if let Some(r) = opt_u64_field(s, "retries").map_err(|e| format!("search.{e}"))? {
            search.eval_retries = r as u32;
        }
        if let Some(seed) = opt_u64_field(s, "seed").map_err(|e| format!("search.{e}"))? {
            search.seed = seed;
        }
        if let Some(t) = opt_u64_field(s, "total_evals").map_err(|e| format!("search.{e}"))? {
            search.max_total_evals = t as usize;
        }
        if let Some(st) = opt_u64_field(s, "stall").map_err(|e| format!("search.{e}"))? {
            search.stall_evals = st as usize;
        }
        if let Some(t) = opt_f64_field(s, "target_ns").map_err(|e| format!("search.{e}"))? {
            search.target_ns = t;
        }
    }

    Ok(PlanRequest {
        bench,
        prefetch,
        spec,
        search,
    })
}

/// Render a successful plan reply.
#[must_use]
pub fn plan_response(reply: &PlanReply) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(true)),
        ("source", Value::Str(reply.source.name().to_string())),
        ("key", Value::Str(format!("{:016x}", reply.key))),
        (
            "plan",
            Value::object(vec![
                (
                    "rows",
                    Value::Array(
                        reply
                            .plan
                            .rows
                            .iter()
                            .map(|&r| Value::UInt(r as u64))
                            .collect(),
                    ),
                ),
                ("predicted_ns", Value::Float(reply.plan.predicted_ns)),
                ("winner", Value::Str(reply.plan.winner.name().to_string())),
                ("total_evals", Value::UInt(reply.plan.total_evals as u64)),
            ]),
        ),
    ])
}

/// Render a planning error.
#[must_use]
pub fn error_response(err: &PlanError) -> Value {
    let error = match err {
        PlanError::Overloaded { retry_after_ms } => Value::object(vec![
            ("kind", Value::Str("overloaded".into())),
            ("retry_after_ms", Value::UInt(*retry_after_ms)),
        ]),
        PlanError::Search(msg) => Value::object(vec![
            ("kind", Value::Str("search".into())),
            ("message", Value::Str(msg.clone())),
        ]),
    };
    Value::object(vec![("ok", Value::Bool(false)), ("error", error)])
}

/// Render a protocol-level (parse/validation) error.
#[must_use]
pub fn bad_request_response(msg: &str) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str("bad_request".into())),
                ("message", Value::Str(msg.to_string())),
            ]),
        ),
    ])
}

/// Execute one parsed op against the planner and render the response.
/// Returns `(response, shutdown_requested)`.
pub fn handle(planner: &Planner, op: &WireOp) -> (Value, bool) {
    match op {
        WireOp::Ping => (
            Value::object(vec![("ok", Value::Bool(true)), ("pong", Value::Bool(true))]),
            false,
        ),
        WireOp::Stats => (
            Value::object(vec![("ok", Value::Bool(true)), ("stats", planner.stats())]),
            false,
        ),
        WireOp::Invalidate => {
            let n = planner.invalidate_cache();
            (
                Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("invalidated", Value::UInt(n as u64)),
                ]),
                false,
            )
        }
        WireOp::Shutdown => (
            Value::object(vec![("ok", Value::Bool(true)), ("bye", Value::Bool(true))]),
            true,
        ),
        WireOp::Plan(req) => {
            let resp = match planner.plan(req) {
                Ok(reply) => plan_response(&reply),
                Err(e) => error_response(&e),
            };
            (resp, false)
        }
    }
}

fn handle_connection(stream: TcpStream, planner: &Planner, shutdown: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match parse_request(&line) {
            Ok(op) => handle(planner, &op),
            Err(msg) => (bad_request_response(&msg), false),
        };
        if writeln!(writer, "{}", response.to_json()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Run the daemon accept loop until a client sends `shutdown`. The
/// listener is switched to non-blocking so the loop can observe the
/// shutdown flag promptly; each connection is served on its own
/// thread.
pub fn serve(listener: TcpListener, planner: Arc<Planner>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let planner = Arc::clone(&planner);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || handle_connection(stream, &planner, &shutdown));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_control_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(WireOp::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(WireOp::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"invalidate"}"#),
            Ok(WireOp::Invalidate)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(WireOp::Shutdown)
        ));
        assert!(parse_request(r#"{"op":"dance"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"noop":1}"#).is_err());
    }

    #[test]
    fn parses_a_full_plan_request() {
        let op = parse_request(
            r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
               "prefetch":true,"search":{"evals":32,"seed":9,"retries":2,
               "total_evals":100,"stall":40,"target_ns":1.5}}"#,
        )
        .unwrap();
        let WireOp::Plan(req) = op else {
            panic!("expected plan")
        };
        assert_eq!(req.bench.name(), "Jacobi");
        assert_eq!(req.spec.name, "DC");
        assert!(req.prefetch);
        assert_eq!(req.search.max_evals_per_strategy, 32);
        assert_eq!(req.search.seed, 9);
        assert_eq!(req.search.eval_retries, 2);
        assert_eq!(req.search.max_total_evals, 100);
        assert_eq!(req.search.stall_evals, 40);
        assert_eq!(req.search.target_ns, 1.5);
    }

    #[test]
    fn plan_defaults_and_validation_errors() {
        let op = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4"}"#).unwrap();
        let WireOp::Plan(req) = op else { panic!() };
        assert_eq!(req.bench.name(), "CG");
        assert_eq!(req.spec.len(), 4);
        assert!(!req.prefetch);

        let err = parse_request(r#"{"op":"plan","app":{"name":"nope"},"arch":"DC"}"#).unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
        let err = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"XX"}"#).unwrap_err();
        assert!(err.contains("unknown arch"), "{err}");
        let err = parse_request(r#"{"op":"plan","arch":"DC"}"#).unwrap_err();
        assert!(err.contains("app"), "{err}");
    }

    #[test]
    fn shed_error_renders_structured_retry_after() {
        let v = error_response(&PlanError::Overloaded { retry_after_ms: 50 });
        let json = v.to_json();
        let back = from_str(&json).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(false)));
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(50));
    }
}
