//! JSON-lines wire protocol and the TCP daemon loop.
//!
//! One request per line, one response per line; both sides are plain
//! JSON rendered and parsed by the shared `mheta_obs::json` machinery
//! (there is no second JSON implementation, and thus no second
//! escaping routine, anywhere in the workspace).
//!
//! Requests:
//!
//! ```json
//! {"op":"ping"}
//! {"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
//!  "prefetch":false,"search":{"evals":64,"seed":7},"deadline_ms":250,
//!  "trace":{"trace_id":"4f2a...","span_id":"9c01..."}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"dump"}
//! {"op":"invalidate"}
//! {"op":"shutdown"}
//! ```
//!
//! `arch` is a preset name (`DC`, `IO`, `HY1`, `HY2`) or `HOM<n>` for
//! a homogeneous `n`-node cluster. The optional `search` object takes
//! `evals` (per-strategy budget), `retries`, `seed`, `total_evals`,
//! `stall`, and `target_ns`. The optional `deadline_ms` is the
//! request's end-to-end budget: when it expires mid-search the reply
//! carries the best incumbent flagged `"degraded":true`; when it
//! expires before any incumbent exists the error kind is `"deadline"`.
//! The optional `trace` object propagates a client-minted trace
//! context (hex IDs); without it the daemon mints a root trace per
//! request. Either way the reply echoes `trace_id`, so the client can
//! correlate its call with the daemon's span log, flight-recorder
//! dump, and Perfetto export.
//!
//! A successful plan reply carries `"source"` — `"fresh"`, `"cache"`,
//! or `"coalesced"` — so clients (and the CI smoke test) can verify
//! cache behavior. Shed requests get structured errors the client can
//! act on: `{"ok":false,"error":{"kind":"overloaded","retry_after_ms":N}}`
//! when the queue is full, `{"kind":"circuit_open","retry_after_ms":N}`
//! when the breaker for that request's shard is open, and
//! `{"kind":"draining","retry_after_ms":N}` while the daemon drains
//! toward shutdown. Every shed also logs a structured event to stderr
//! — sheds are never silent.
//!
//! ## Lifecycle
//!
//! [`serve_with`] runs until [`Lifecycle::begin_drain`] fires (the
//! `shutdown` op, or — in `pland` — SIGTERM/SIGINT). Draining keeps
//! the listener open so late clients receive the structured
//! `draining` error instead of a connection refusal; in-flight plan
//! requests run to completion, bounded by the drain deadline. Control
//! ops (`stats`, `metrics`, `dump`, `ping`) are still served during
//! drain, so operators can observe the drain itself. Per-connection
//! read/write timeouts bound how long a half-open client can hold a
//! handler thread: a timed-out connection is dropped cleanly with one
//! `conn.timeout` flight-recorder event, never a panic.
//!
//! `metrics` returns the Prometheus text exposition as a JSON string
//! under `"prometheus"`; `dump` returns the flight-recorder document
//! (`mheta-flight/v1`) under `"flight"`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mheta_obs::json::{self, from_str, opt_f64_field, opt_u64_field, str_field, Value};
use mheta_obs::trace::{id_hex, parse_id};
use mheta_obs::TraceContext;

use crate::planner::{PlanError, PlanReply, Planner};
use crate::request::{benchmark_by_name, cluster_by_name, PlanRequest, SearchParams};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum WireOp {
    /// Plan an application on a cluster, optionally under a
    /// client-propagated trace context and an end-to-end deadline
    /// budget (milliseconds).
    Plan(Box<PlanRequest>, Option<TraceContext>, Option<u64>),
    /// Report service, cache, executor, and breaker statistics.
    Stats,
    /// Render the Prometheus text-format exposition.
    Metrics,
    /// Dump the flight recorder.
    Dump,
    /// Drop every cached plan.
    Invalidate,
    /// Liveness probe.
    Ping,
    /// Drain and stop the daemon.
    Shutdown,
}

/// Parse one request line into a [`WireOp`].
pub fn parse_request(line: &str) -> Result<WireOp, String> {
    let v = from_str(line).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let op = str_field(&v, "op").map_err(|e| e.to_string())?;
    match op {
        "ping" => Ok(WireOp::Ping),
        "stats" => Ok(WireOp::Stats),
        "metrics" => Ok(WireOp::Metrics),
        "dump" => Ok(WireOp::Dump),
        "invalidate" => Ok(WireOp::Invalidate),
        "shutdown" => Ok(WireOp::Shutdown),
        "plan" => {
            let deadline_ms = opt_u64_field(&v, "deadline_ms").map_err(|e| e.to_string())?;
            Ok(WireOp::Plan(
                Box::new(parse_plan(&v)?),
                parse_trace(&v)?,
                deadline_ms,
            ))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Parse the optional `trace` object (`trace_id` + `span_id`, hex).
fn parse_trace(v: &Value) -> Result<Option<TraceContext>, String> {
    let Some(t) = v.get("trace") else {
        return Ok(None);
    };
    if matches!(t, Value::Null) {
        return Ok(None);
    }
    let trace_id = str_field(t, "trace_id").map_err(|e| format!("trace.{e}"))?;
    let span_id = str_field(t, "span_id").map_err(|e| format!("trace.{e}"))?;
    let trace_id = parse_id(trace_id).map_err(|e| format!("trace.trace_id: {e}"))?;
    let span_id = parse_id(span_id).map_err(|e| format!("trace.span_id: {e}"))?;
    Ok(Some(TraceContext::from_wire(trace_id, span_id)))
}

fn parse_plan(v: &Value) -> Result<PlanRequest, String> {
    let app = json::field(v, "app").map_err(|e| e.to_string())?;
    let name = str_field(app, "name").map_err(|e| format!("app.{e}"))?;
    let size = json::opt_str_field(app, "size")
        .map_err(|e| format!("app.{e}"))?
        .unwrap_or("small");
    let bench = benchmark_by_name(name, size)
        .ok_or_else(|| format!("unknown app `{name}` (size `{size}`)"))?;

    let arch = str_field(v, "arch").map_err(|e| e.to_string())?;
    let spec = cluster_by_name(arch)
        .ok_or_else(|| format!("unknown arch `{arch}` (want DC, IO, HY1, HY2, or HOM<n>)"))?;

    let prefetch = match v.get("prefetch") {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("field `prefetch`: expected boolean".into()),
    };

    let mut search = SearchParams::default();
    if let Some(s) = v.get("search") {
        if let Some(e) = opt_u64_field(s, "evals").map_err(|e| format!("search.{e}"))? {
            search.max_evals_per_strategy = e as usize;
        }
        if let Some(r) = opt_u64_field(s, "retries").map_err(|e| format!("search.{e}"))? {
            search.eval_retries = r as u32;
        }
        if let Some(seed) = opt_u64_field(s, "seed").map_err(|e| format!("search.{e}"))? {
            search.seed = seed;
        }
        if let Some(t) = opt_u64_field(s, "total_evals").map_err(|e| format!("search.{e}"))? {
            search.max_total_evals = t as usize;
        }
        if let Some(st) = opt_u64_field(s, "stall").map_err(|e| format!("search.{e}"))? {
            search.stall_evals = st as usize;
        }
        if let Some(t) = opt_f64_field(s, "target_ns").map_err(|e| format!("search.{e}"))? {
            search.target_ns = t;
        }
    }

    Ok(PlanRequest {
        bench,
        prefetch,
        spec,
        search,
    })
}

/// Render a successful plan reply.
#[must_use]
pub fn plan_response(reply: &PlanReply) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(true)),
        ("source", Value::Str(reply.source.name().to_string())),
        ("key", Value::Str(format!("{:016x}", reply.key))),
        ("trace_id", Value::Str(reply.trace.trace_hex())),
        ("degraded", Value::Bool(reply.degraded)),
        (
            "plan",
            Value::object(vec![
                (
                    "rows",
                    Value::Array(
                        reply
                            .plan
                            .rows
                            .iter()
                            .map(|&r| Value::UInt(r as u64))
                            .collect(),
                    ),
                ),
                ("predicted_ns", Value::Float(reply.plan.predicted_ns)),
                ("winner", Value::Str(reply.plan.winner.name().to_string())),
                ("total_evals", Value::UInt(reply.plan.total_evals as u64)),
            ]),
        ),
    ])
}

/// Render a planning error. `trace` identifies the failed request in
/// the daemon's telemetry (omitted when no request context exists).
#[must_use]
pub fn error_response(err: &PlanError, trace: Option<&TraceContext>) -> Value {
    let error = match err {
        PlanError::Overloaded { retry_after_ms } => Value::object(vec![
            ("kind", Value::Str("overloaded".into())),
            ("retry_after_ms", Value::UInt(*retry_after_ms)),
        ]),
        PlanError::Search(msg) => Value::object(vec![
            ("kind", Value::Str("search".into())),
            ("message", Value::Str(msg.clone())),
        ]),
        PlanError::DeadlineExceeded { budget_ms } => Value::object(vec![
            ("kind", Value::Str("deadline".into())),
            ("budget_ms", Value::UInt(*budget_ms)),
        ]),
        PlanError::CircuitOpen { retry_after_ms } => Value::object(vec![
            ("kind", Value::Str("circuit_open".into())),
            ("retry_after_ms", Value::UInt(*retry_after_ms)),
        ]),
    };
    let mut fields = vec![("ok", Value::Bool(false)), ("error", error)];
    if let Some(t) = trace {
        fields.push(("trace_id", Value::Str(t.trace_hex())));
    }
    Value::object(fields)
}

/// Render the structured drain shed: the daemon is on its way down and
/// the client should retry elsewhere (or here, after a restart) in
/// `retry_after_ms`.
#[must_use]
pub fn draining_response(retry_after_ms: u64) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str("draining".into())),
                ("retry_after_ms", Value::UInt(retry_after_ms)),
            ]),
        ),
    ])
}

/// Render a protocol-level (parse/validation) error.
#[must_use]
pub fn bad_request_response(msg: &str) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str("bad_request".into())),
                ("message", Value::Str(msg.to_string())),
            ]),
        ),
    ])
}

/// Log one structured shed event to stderr: one JSON line with the
/// shed kind, the request key hash, the queue depth at shed time, and
/// the backoff the client was told. Sheds must be diagnosable from the
/// daemon log alone — dropping them silently hides capacity incidents.
fn log_shed(
    planner: &Planner,
    kind: &str,
    reply_key: u64,
    ctx: &TraceContext,
    retry_after_ms: u64,
) {
    let line = Value::object(vec![
        ("event", Value::Str("request.shed".into())),
        ("kind", Value::Str(kind.to_string())),
        ("trace_id", Value::Str(ctx.trace_hex())),
        ("key", Value::Str(id_hex(reply_key))),
        ("queue_depth", Value::UInt(planner.queue_depth() as u64)),
        ("retry_after_ms", Value::UInt(retry_after_ms)),
    ]);
    eprintln!("{}", line.to_json());
}

/// Execute one parsed op against the planner and render the response.
/// Returns `(response, shutdown_requested)`. Drain-awareness lives in
/// the connection loop (which owns the [`Lifecycle`]); `handle` itself
/// always serves.
pub fn handle(planner: &Planner, op: &WireOp) -> (Value, bool) {
    match op {
        WireOp::Ping => (
            Value::object(vec![("ok", Value::Bool(true)), ("pong", Value::Bool(true))]),
            false,
        ),
        WireOp::Stats => (
            Value::object(vec![("ok", Value::Bool(true)), ("stats", planner.stats())]),
            false,
        ),
        WireOp::Metrics => (
            Value::object(vec![
                ("ok", Value::Bool(true)),
                ("prometheus", Value::Str(planner.prometheus())),
            ]),
            false,
        ),
        WireOp::Dump => (
            Value::object(vec![
                ("ok", Value::Bool(true)),
                ("flight", planner.flight_dump()),
            ]),
            false,
        ),
        WireOp::Invalidate => {
            let n = planner.invalidate_cache();
            (
                Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("invalidated", Value::UInt(n as u64)),
                ]),
                false,
            )
        }
        WireOp::Shutdown => (
            Value::object(vec![("ok", Value::Bool(true)), ("bye", Value::Bool(true))]),
            true,
        ),
        WireOp::Plan(req, trace, deadline_ms) => {
            // A propagated context becomes the parent of the daemon's
            // span; otherwise the daemon is the trace root.
            let ctx = match trace {
                Some(t) => t.child(),
                None => TraceContext::root(),
            };
            let key = crate::request::fnv1a64(req.canonical_json().as_bytes());
            let deadline = deadline_ms.map(Duration::from_millis);
            let resp = match planner.plan_opts(req, ctx, deadline) {
                Ok(reply) => plan_response(&reply),
                Err(e) => {
                    match &e {
                        PlanError::Overloaded { retry_after_ms } => {
                            log_shed(planner, "overloaded", key, &ctx, *retry_after_ms);
                        }
                        PlanError::CircuitOpen { retry_after_ms } => {
                            log_shed(planner, "circuit_open", key, &ctx, *retry_after_ms);
                        }
                        _ => {}
                    }
                    error_response(&e, Some(&ctx))
                }
            };
            (resp, false)
        }
    }
}

/// Daemon lifecycle tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a drain waits for in-flight plan requests before the
    /// daemon exits anyway, milliseconds.
    pub drain_deadline_ms: u64,
    /// Per-connection read timeout, milliseconds; 0 disables. A
    /// half-open client that sends nothing for this long is dropped
    /// cleanly instead of holding its handler thread forever.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout, milliseconds; 0 disables.
    pub write_timeout_ms: u64,
    /// Backoff suggested to plan requests shed during drain,
    /// milliseconds (roughly a restart's startup time).
    pub drain_retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            drain_deadline_ms: 5_000,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            drain_retry_after_ms: 200,
        }
    }
}

/// Shared daemon lifecycle: the drain flag and the in-flight plan
/// counter. `pland`'s signal watcher flips the flag on SIGTERM/SIGINT;
/// the `shutdown` wire op flips it from a connection thread; the
/// accept loop watches both it and the in-flight count.
#[derive(Debug, Default)]
pub struct Lifecycle {
    draining: AtomicBool,
    inflight: AtomicUsize,
}

impl Lifecycle {
    /// A fresh (serving, idle) lifecycle.
    #[must_use]
    pub fn new() -> Self {
        Lifecycle::default()
    }

    /// Flip into draining mode (idempotent). New plan requests are
    /// shed with the structured `draining` error; in-flight ones run
    /// to completion, bounded by the drain deadline.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Plan requests currently executing.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    fn enter_plan(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    fn exit_plan(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn log_lifecycle_event(planner: &Planner, event: &'static str, detail: Vec<(&str, Value)>) {
    let mut fields = vec![("event", Value::Str(event.to_string()))];
    fields.extend(detail.iter().map(|(k, v)| (*k, v.clone())));
    eprintln!("{}", Value::object(fields).to_json());
    if let Some(r) = planner.recorder() {
        r.record_kv(None, event, detail);
    }
}

fn handle_connection(
    stream: TcpStream,
    planner: &Planner,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                // A read timeout is a clean disconnect of a half-open
                // client, not a fault: one event, no panic.
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) {
                    log_lifecycle_event(
                        planner,
                        "conn.timeout",
                        vec![("read_timeout_ms", Value::UInt(cfg.read_timeout_ms))],
                    );
                }
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match parse_request(&line) {
            Ok(op @ WireOp::Plan(..)) => {
                // Increment BEFORE checking the drain flag: the drain
                // loop sets the flag first and reads the counter
                // second, so every plan is either counted or shed —
                // never silently raced past the drain.
                lifecycle.enter_plan();
                let out = if lifecycle.is_draining() {
                    log_lifecycle_event(
                        planner,
                        "request.shed.draining",
                        vec![("retry_after_ms", Value::UInt(cfg.drain_retry_after_ms))],
                    );
                    (draining_response(cfg.drain_retry_after_ms), false)
                } else {
                    handle(planner, &op)
                };
                lifecycle.exit_plan();
                out
            }
            Ok(op) => handle(planner, &op),
            Err(msg) => (bad_request_response(&msg), false),
        };
        if writeln!(writer, "{}", response.to_json()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            lifecycle.begin_drain();
            return;
        }
    }
}

/// Run the daemon accept loop with a default lifecycle and config
/// until a client sends `shutdown`. See [`serve_with`].
pub fn serve(listener: TcpListener, planner: Arc<Planner>) -> std::io::Result<()> {
    serve_with(
        listener,
        planner,
        Arc::new(Lifecycle::new()),
        ServeConfig::default(),
    )
}

/// Run the daemon accept loop until `lifecycle` drains. The listener
/// is non-blocking so the loop observes the drain flag promptly; each
/// connection is served on its own thread with the configured
/// read/write timeouts. During a drain the listener stays open (late
/// plan requests get the structured `draining` error, control ops
/// still work) until in-flight plans hit zero or the drain deadline
/// passes.
pub fn serve_with(
    listener: TcpListener,
    planner: Arc<Planner>,
    lifecycle: Arc<Lifecycle>,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut drain_started: Option<Instant> = None;
    loop {
        if lifecycle.is_draining() {
            let started = *drain_started.get_or_insert_with(|| {
                log_lifecycle_event(
                    &planner,
                    "drain.begin",
                    vec![
                        ("in_flight", Value::UInt(lifecycle.in_flight() as u64)),
                        ("drain_deadline_ms", Value::UInt(cfg.drain_deadline_ms)),
                    ],
                );
                Instant::now()
            });
            let deadline = started + Duration::from_millis(cfg.drain_deadline_ms);
            let in_flight = lifecycle.in_flight();
            if in_flight == 0 || Instant::now() >= deadline {
                log_lifecycle_event(
                    &planner,
                    "drain.end",
                    vec![
                        ("in_flight", Value::UInt(in_flight as u64)),
                        (
                            "elapsed_ms",
                            Value::UInt(started.elapsed().as_millis() as u64),
                        ),
                    ],
                );
                return Ok(());
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if cfg.read_timeout_ms > 0 {
                    let _ =
                        stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)));
                }
                if cfg.write_timeout_ms > 0 {
                    let _ =
                        stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
                }
                let planner = Arc::clone(&planner);
                let lifecycle = Arc::clone(&lifecycle);
                let cfg = cfg.clone();
                std::thread::spawn(move || handle_connection(stream, &planner, &lifecycle, &cfg));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_control_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(WireOp::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(WireOp::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#),
            Ok(WireOp::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"dump"}"#),
            Ok(WireOp::Dump)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"invalidate"}"#),
            Ok(WireOp::Invalidate)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(WireOp::Shutdown)
        ));
        assert!(parse_request(r#"{"op":"dance"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"noop":1}"#).is_err());
    }

    #[test]
    fn parses_a_full_plan_request() {
        let op = parse_request(
            r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
               "prefetch":true,"deadline_ms":250,"search":{"evals":32,"seed":9,"retries":2,
               "total_evals":100,"stall":40,"target_ns":1.5}}"#,
        )
        .unwrap();
        let WireOp::Plan(req, trace, deadline_ms) = op else {
            panic!("expected plan")
        };
        assert!(trace.is_none());
        assert_eq!(deadline_ms, Some(250));
        assert_eq!(req.bench.name(), "Jacobi");
        assert_eq!(req.spec.name, "DC");
        assert!(req.prefetch);
        assert_eq!(req.search.max_evals_per_strategy, 32);
        assert_eq!(req.search.seed, 9);
        assert_eq!(req.search.eval_retries, 2);
        assert_eq!(req.search.max_total_evals, 100);
        assert_eq!(req.search.stall_evals, 40);
        assert_eq!(req.search.target_ns, 1.5);
    }

    #[test]
    fn parses_and_validates_the_trace_object() {
        let op = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"4f2adeadbeef0001","span_id":"9c01"}}"#,
        )
        .unwrap();
        let WireOp::Plan(_, Some(t), deadline_ms) = op else {
            panic!("expected traced plan")
        };
        assert_eq!(t.trace_id, 0x4f2a_dead_beef_0001);
        assert_eq!(t.span_id, 0x9c01);
        assert_eq!(deadline_ms, None, "no deadline unless requested");

        let err = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"zz","span_id":"1"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace.trace_id"), "{err}");
        let err = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"1"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace.field `span_id`"), "{err}");
    }

    #[test]
    fn plan_defaults_and_validation_errors() {
        let op = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4"}"#).unwrap();
        let WireOp::Plan(req, _, _) = op else {
            panic!()
        };
        assert_eq!(req.bench.name(), "CG");
        assert_eq!(req.spec.len(), 4);
        assert!(!req.prefetch);

        let err = parse_request(r#"{"op":"plan","app":{"name":"nope"},"arch":"DC"}"#).unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
        let err = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"XX"}"#).unwrap_err();
        assert!(err.contains("unknown arch"), "{err}");
        let err = parse_request(r#"{"op":"plan","arch":"DC"}"#).unwrap_err();
        assert!(err.contains("app"), "{err}");
    }

    #[test]
    fn shed_error_renders_structured_retry_after() {
        let ctx = TraceContext::root();
        let v = error_response(&PlanError::Overloaded { retry_after_ms: 50 }, Some(&ctx));
        let json = v.to_json();
        let back = from_str(&json).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(false)));
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(50));
        assert_eq!(
            back.get("trace_id").unwrap().as_str(),
            Some(ctx.trace_hex().as_str())
        );
    }

    #[test]
    fn lifecycle_errors_render_structured_kinds() {
        let v = error_response(&PlanError::DeadlineExceeded { budget_ms: 250 }, None);
        let back = from_str(&v.to_json()).unwrap();
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("deadline"));
        assert_eq!(error.get("budget_ms").unwrap().as_u64(), Some(250));

        let v = error_response(
            &PlanError::CircuitOpen {
                retry_after_ms: 900,
            },
            None,
        );
        let back = from_str(&v.to_json()).unwrap();
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("circuit_open"));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(900));

        let v = draining_response(200);
        let back = from_str(&v.to_json()).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(false)));
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("draining"));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn lifecycle_drain_is_idempotent_and_counts_inflight() {
        let l = Lifecycle::new();
        assert!(!l.is_draining());
        assert_eq!(l.in_flight(), 0);
        l.enter_plan();
        l.enter_plan();
        assert_eq!(l.in_flight(), 2);
        l.begin_drain();
        l.begin_drain();
        assert!(l.is_draining());
        l.exit_plan();
        l.exit_plan();
        assert_eq!(l.in_flight(), 0);
    }
}
