//! JSON-lines wire protocol and the TCP daemon loop.
//!
//! One request per line, one response per line; both sides are plain
//! JSON rendered and parsed by the shared `mheta_obs::json` machinery
//! (there is no second JSON implementation, and thus no second
//! escaping routine, anywhere in the workspace).
//!
//! Requests:
//!
//! ```json
//! {"op":"ping"}
//! {"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
//!  "prefetch":false,"search":{"evals":64,"seed":7},
//!  "trace":{"trace_id":"4f2a...","span_id":"9c01..."}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"dump"}
//! {"op":"invalidate"}
//! {"op":"shutdown"}
//! ```
//!
//! `arch` is a preset name (`DC`, `IO`, `HY1`, `HY2`) or `HOM<n>` for
//! a homogeneous `n`-node cluster. The optional `search` object takes
//! `evals` (per-strategy budget), `retries`, `seed`, `total_evals`,
//! `stall`, and `target_ns`. The optional `trace` object propagates a
//! client-minted trace context (hex IDs); without it the daemon mints
//! a root trace per request. Either way the reply echoes `trace_id`,
//! so the client can correlate its call with the daemon's span log,
//! flight-recorder dump, and Perfetto export.
//!
//! A successful plan reply carries `"source"` — `"fresh"`, `"cache"`,
//! or `"coalesced"` — so clients (and the CI smoke test) can verify
//! cache behavior. A shed request gets
//! `{"ok":false,"error":{"kind":"overloaded","retry_after_ms":N}}`,
//! and the daemon logs a structured shed event to stderr (key hash,
//! queue depth, suggested backoff) — sheds are never silent.
//!
//! `metrics` returns the Prometheus text exposition as a JSON string
//! under `"prometheus"`; `dump` returns the flight-recorder document
//! (`mheta-flight/v1`) under `"flight"`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mheta_obs::json::{self, from_str, opt_f64_field, opt_u64_field, str_field, Value};
use mheta_obs::trace::{id_hex, parse_id};
use mheta_obs::TraceContext;

use crate::planner::{PlanError, PlanReply, Planner};
use crate::request::{benchmark_by_name, cluster_by_name, PlanRequest, SearchParams};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum WireOp {
    /// Plan an application on a cluster, optionally under a
    /// client-propagated trace context.
    Plan(Box<PlanRequest>, Option<TraceContext>),
    /// Report service, cache, and executor statistics.
    Stats,
    /// Render the Prometheus text-format exposition.
    Metrics,
    /// Dump the flight recorder.
    Dump,
    /// Drop every cached plan.
    Invalidate,
    /// Liveness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// Parse one request line into a [`WireOp`].
pub fn parse_request(line: &str) -> Result<WireOp, String> {
    let v = from_str(line).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let op = str_field(&v, "op").map_err(|e| e.to_string())?;
    match op {
        "ping" => Ok(WireOp::Ping),
        "stats" => Ok(WireOp::Stats),
        "metrics" => Ok(WireOp::Metrics),
        "dump" => Ok(WireOp::Dump),
        "invalidate" => Ok(WireOp::Invalidate),
        "shutdown" => Ok(WireOp::Shutdown),
        "plan" => Ok(WireOp::Plan(Box::new(parse_plan(&v)?), parse_trace(&v)?)),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Parse the optional `trace` object (`trace_id` + `span_id`, hex).
fn parse_trace(v: &Value) -> Result<Option<TraceContext>, String> {
    let Some(t) = v.get("trace") else {
        return Ok(None);
    };
    if matches!(t, Value::Null) {
        return Ok(None);
    }
    let trace_id = str_field(t, "trace_id").map_err(|e| format!("trace.{e}"))?;
    let span_id = str_field(t, "span_id").map_err(|e| format!("trace.{e}"))?;
    let trace_id = parse_id(trace_id).map_err(|e| format!("trace.trace_id: {e}"))?;
    let span_id = parse_id(span_id).map_err(|e| format!("trace.span_id: {e}"))?;
    Ok(Some(TraceContext::from_wire(trace_id, span_id)))
}

fn parse_plan(v: &Value) -> Result<PlanRequest, String> {
    let app = json::field(v, "app").map_err(|e| e.to_string())?;
    let name = str_field(app, "name").map_err(|e| format!("app.{e}"))?;
    let size = json::opt_str_field(app, "size")
        .map_err(|e| format!("app.{e}"))?
        .unwrap_or("small");
    let bench = benchmark_by_name(name, size)
        .ok_or_else(|| format!("unknown app `{name}` (size `{size}`)"))?;

    let arch = str_field(v, "arch").map_err(|e| e.to_string())?;
    let spec = cluster_by_name(arch)
        .ok_or_else(|| format!("unknown arch `{arch}` (want DC, IO, HY1, HY2, or HOM<n>)"))?;

    let prefetch = match v.get("prefetch") {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err("field `prefetch`: expected boolean".into()),
    };

    let mut search = SearchParams::default();
    if let Some(s) = v.get("search") {
        if let Some(e) = opt_u64_field(s, "evals").map_err(|e| format!("search.{e}"))? {
            search.max_evals_per_strategy = e as usize;
        }
        if let Some(r) = opt_u64_field(s, "retries").map_err(|e| format!("search.{e}"))? {
            search.eval_retries = r as u32;
        }
        if let Some(seed) = opt_u64_field(s, "seed").map_err(|e| format!("search.{e}"))? {
            search.seed = seed;
        }
        if let Some(t) = opt_u64_field(s, "total_evals").map_err(|e| format!("search.{e}"))? {
            search.max_total_evals = t as usize;
        }
        if let Some(st) = opt_u64_field(s, "stall").map_err(|e| format!("search.{e}"))? {
            search.stall_evals = st as usize;
        }
        if let Some(t) = opt_f64_field(s, "target_ns").map_err(|e| format!("search.{e}"))? {
            search.target_ns = t;
        }
    }

    Ok(PlanRequest {
        bench,
        prefetch,
        spec,
        search,
    })
}

/// Render a successful plan reply.
#[must_use]
pub fn plan_response(reply: &PlanReply) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(true)),
        ("source", Value::Str(reply.source.name().to_string())),
        ("key", Value::Str(format!("{:016x}", reply.key))),
        ("trace_id", Value::Str(reply.trace.trace_hex())),
        (
            "plan",
            Value::object(vec![
                (
                    "rows",
                    Value::Array(
                        reply
                            .plan
                            .rows
                            .iter()
                            .map(|&r| Value::UInt(r as u64))
                            .collect(),
                    ),
                ),
                ("predicted_ns", Value::Float(reply.plan.predicted_ns)),
                ("winner", Value::Str(reply.plan.winner.name().to_string())),
                ("total_evals", Value::UInt(reply.plan.total_evals as u64)),
            ]),
        ),
    ])
}

/// Render a planning error. `trace` identifies the failed request in
/// the daemon's telemetry (omitted when no request context exists).
#[must_use]
pub fn error_response(err: &PlanError, trace: Option<&TraceContext>) -> Value {
    let error = match err {
        PlanError::Overloaded { retry_after_ms } => Value::object(vec![
            ("kind", Value::Str("overloaded".into())),
            ("retry_after_ms", Value::UInt(*retry_after_ms)),
        ]),
        PlanError::Search(msg) => Value::object(vec![
            ("kind", Value::Str("search".into())),
            ("message", Value::Str(msg.clone())),
        ]),
    };
    let mut fields = vec![("ok", Value::Bool(false)), ("error", error)];
    if let Some(t) = trace {
        fields.push(("trace_id", Value::Str(t.trace_hex())));
    }
    Value::object(fields)
}

/// Render a protocol-level (parse/validation) error.
#[must_use]
pub fn bad_request_response(msg: &str) -> Value {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str("bad_request".into())),
                ("message", Value::Str(msg.to_string())),
            ]),
        ),
    ])
}

/// Log one structured shed event to stderr: one JSON line with the
/// request key hash, the queue depth at shed time, and the backoff the
/// client was told. Sheds must be diagnosable from the daemon log
/// alone — dropping them silently hides capacity incidents.
fn log_shed(planner: &Planner, reply_key: u64, ctx: &TraceContext, retry_after_ms: u64) {
    let line = Value::object(vec![
        ("event", Value::Str("request.shed".into())),
        ("trace_id", Value::Str(ctx.trace_hex())),
        ("key", Value::Str(id_hex(reply_key))),
        ("queue_depth", Value::UInt(planner.queue_depth() as u64)),
        ("retry_after_ms", Value::UInt(retry_after_ms)),
    ]);
    eprintln!("{}", line.to_json());
}

/// Execute one parsed op against the planner and render the response.
/// Returns `(response, shutdown_requested)`.
pub fn handle(planner: &Planner, op: &WireOp) -> (Value, bool) {
    match op {
        WireOp::Ping => (
            Value::object(vec![("ok", Value::Bool(true)), ("pong", Value::Bool(true))]),
            false,
        ),
        WireOp::Stats => (
            Value::object(vec![("ok", Value::Bool(true)), ("stats", planner.stats())]),
            false,
        ),
        WireOp::Metrics => (
            Value::object(vec![
                ("ok", Value::Bool(true)),
                ("prometheus", Value::Str(planner.prometheus())),
            ]),
            false,
        ),
        WireOp::Dump => (
            Value::object(vec![
                ("ok", Value::Bool(true)),
                ("flight", planner.flight_dump()),
            ]),
            false,
        ),
        WireOp::Invalidate => {
            let n = planner.invalidate_cache();
            (
                Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("invalidated", Value::UInt(n as u64)),
                ]),
                false,
            )
        }
        WireOp::Shutdown => (
            Value::object(vec![("ok", Value::Bool(true)), ("bye", Value::Bool(true))]),
            true,
        ),
        WireOp::Plan(req, trace) => {
            // A propagated context becomes the parent of the daemon's
            // span; otherwise the daemon is the trace root.
            let ctx = match trace {
                Some(t) => t.child(),
                None => TraceContext::root(),
            };
            let key = crate::request::fnv1a64(req.canonical_json().as_bytes());
            let resp = match planner.plan_traced(req, ctx) {
                Ok(reply) => plan_response(&reply),
                Err(e) => {
                    if let PlanError::Overloaded { retry_after_ms } = &e {
                        log_shed(planner, key, &ctx, *retry_after_ms);
                    }
                    error_response(&e, Some(&ctx))
                }
            };
            (resp, false)
        }
    }
}

fn handle_connection(stream: TcpStream, planner: &Planner, shutdown: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match parse_request(&line) {
            Ok(op) => handle(planner, &op),
            Err(msg) => (bad_request_response(&msg), false),
        };
        if writeln!(writer, "{}", response.to_json()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Run the daemon accept loop until a client sends `shutdown`. The
/// listener is switched to non-blocking so the loop can observe the
/// shutdown flag promptly; each connection is served on its own
/// thread.
pub fn serve(listener: TcpListener, planner: Arc<Planner>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let planner = Arc::clone(&planner);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || handle_connection(stream, &planner, &shutdown));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_control_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(WireOp::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(WireOp::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#),
            Ok(WireOp::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"dump"}"#),
            Ok(WireOp::Dump)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"invalidate"}"#),
            Ok(WireOp::Invalidate)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(WireOp::Shutdown)
        ));
        assert!(parse_request(r#"{"op":"dance"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"noop":1}"#).is_err());
    }

    #[test]
    fn parses_a_full_plan_request() {
        let op = parse_request(
            r#"{"op":"plan","app":{"name":"jacobi","size":"small"},"arch":"DC",
               "prefetch":true,"search":{"evals":32,"seed":9,"retries":2,
               "total_evals":100,"stall":40,"target_ns":1.5}}"#,
        )
        .unwrap();
        let WireOp::Plan(req, trace) = op else {
            panic!("expected plan")
        };
        assert!(trace.is_none());
        assert_eq!(req.bench.name(), "Jacobi");
        assert_eq!(req.spec.name, "DC");
        assert!(req.prefetch);
        assert_eq!(req.search.max_evals_per_strategy, 32);
        assert_eq!(req.search.seed, 9);
        assert_eq!(req.search.eval_retries, 2);
        assert_eq!(req.search.max_total_evals, 100);
        assert_eq!(req.search.stall_evals, 40);
        assert_eq!(req.search.target_ns, 1.5);
    }

    #[test]
    fn parses_and_validates_the_trace_object() {
        let op = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"4f2adeadbeef0001","span_id":"9c01"}}"#,
        )
        .unwrap();
        let WireOp::Plan(_, Some(t)) = op else {
            panic!("expected traced plan")
        };
        assert_eq!(t.trace_id, 0x4f2a_dead_beef_0001);
        assert_eq!(t.span_id, 0x9c01);

        let err = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"zz","span_id":"1"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace.trace_id"), "{err}");
        let err = parse_request(
            r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4",
               "trace":{"trace_id":"1"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace.field `span_id`"), "{err}");
    }

    #[test]
    fn plan_defaults_and_validation_errors() {
        let op = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"HOM4"}"#).unwrap();
        let WireOp::Plan(req, _) = op else { panic!() };
        assert_eq!(req.bench.name(), "CG");
        assert_eq!(req.spec.len(), 4);
        assert!(!req.prefetch);

        let err = parse_request(r#"{"op":"plan","app":{"name":"nope"},"arch":"DC"}"#).unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
        let err = parse_request(r#"{"op":"plan","app":{"name":"cg"},"arch":"XX"}"#).unwrap_err();
        assert!(err.contains("unknown arch"), "{err}");
        let err = parse_request(r#"{"op":"plan","arch":"DC"}"#).unwrap_err();
        assert!(err.contains("app"), "{err}");
    }

    #[test]
    fn shed_error_renders_structured_retry_after() {
        let ctx = TraceContext::root();
        let v = error_response(&PlanError::Overloaded { retry_after_ms: 50 }, Some(&ctx));
        let json = v.to_json();
        let back = from_str(&json).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(false)));
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(50));
        assert_eq!(
            back.get("trace_id").unwrap().as_str(),
            Some(ctx.trace_hex().as_str())
        );
    }
}
