//! Thread-pool request executor with a bounded queue and admission
//! control.
//!
//! Jobs are submitted with [`Executor::try_submit`], which **never
//! blocks**: if the queue is at capacity the job is rejected
//! immediately and the caller sheds the request with a structured
//! retry-after error. Workers pop jobs FIFO. Dropping the executor
//! stops the workers after the queued jobs drain.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    capacity: usize,
    rejected: AtomicU64,
    executed: AtomicU64,
}

/// Fixed-size worker pool over a bounded FIFO queue.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// The queue was full: admission control rejected the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl Executor {
    /// Spawn `workers` worker threads (clamped to at least 1) feeding
    /// from a queue of at most `queue_capacity` pending jobs. A
    /// capacity of 0 is legal and rejects every submission — useful to
    /// force deterministic shedding in tests.
    #[must_use]
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: queue_capacity,
            rejected: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Executor { shared, workers }
    }

    /// Enqueue `job` if the queue has room; otherwise return
    /// [`QueueFull`] *immediately* — this call never blocks on a full
    /// queue.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), QueueFull> {
        let mut queue = self.shared.queue.lock().expect("executor queue poisoned");
        if queue.jobs.len() >= self.shared.capacity {
            drop(queue);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueueFull);
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting in the queue (a point-in-time gauge —
    /// used by shed logging and the Prometheus exposition).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("executor queue poisoned")
            .jobs
            .len()
    }

    /// Jobs rejected by admission control so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Jobs fully executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("executor queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("executor queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("executor queue poisoned");
            }
        };
        job();
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_submitted_jobs() {
        let ex = Executor::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            ex.try_submit(move || tx.send(i).unwrap()).unwrap();
        }
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        drop(ex);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One worker blocked on a gate, queue of 1: the third submit
        // must be rejected without blocking.
        let ex = Executor::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        ex.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap(); // worker now busy, queue empty
        ex.try_submit(|| {}).unwrap(); // fills the queue
        assert_eq!(ex.try_submit(|| {}), Err(QueueFull));
        assert_eq!(ex.rejected(), 1);
        gate_tx.send(()).unwrap();
        drop(ex); // drains the queued no-op
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let ex = Executor::new(1, 0);
        assert_eq!(ex.try_submit(|| {}), Err(QueueFull));
        assert_eq!(ex.executed(), 0);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let ex = Executor::new(1, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            ex.try_submit(move || tx.send(i).unwrap()).unwrap();
        }
        drop(ex);
        drop(tx);
        assert_eq!(rx.iter().count(), 5);
    }
}
