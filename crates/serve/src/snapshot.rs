//! Crash-safe plan-cache persistence: the `mheta-plancache/v1` file.
//!
//! `pland` snapshots its plan cache to disk — periodically and on
//! graceful drain — and warm-starts from the snapshot at boot, so a
//! restart's first request for a previously planned workload is a
//! cache hit instead of a full portfolio search.
//!
//! The file is one compact-JSON document:
//!
//! ```json
//! {"schema":"mheta-plancache/v1",
//!  "checksum":"<16-hex FNV-1a-64 of the payload rendering>",
//!  "payload":{"entries":[
//!    {"key":"<16-hex cache key>","canon":"<canonical request JSON>",
//!     "plan":{"rows":[..],"predicted_ns_bits":"<16-hex f64 bits>",
//!             "winner":"gbs","total_evals":N}}]}}
//! ```
//!
//! Three properties make it crash-safe:
//!
//! * **Atomic replace** — [`save`] writes to a `.tmp` sibling, fsyncs
//!   it, renames it over the target, and fsyncs the directory, so
//!   neither a crash mid-write nor a power loss right after the rename
//!   leaves a torn or empty file — always the old snapshot or the new
//!   one, whole.
//! * **Self-verifying** — the checksum is FNV-1a-64 over the payload's
//!   canonical compact rendering. [`load`] re-renders the parsed
//!   payload and recomputes; any truncation or byte flip either breaks
//!   the JSON (→ [`SnapshotError::Malformed`]) or changes the
//!   re-rendering (→ [`SnapshotError::Checksum`]).
//! * **Bitwise-exact** — `predicted_ns` travels as the hex of its IEEE
//!   754 bits, never as a decimal float, so save → load is the
//!   identity on every plan (the round-trip proptests pin this).
//!
//! Every rejection is a value, not a panic: the daemon logs it and
//! cold-starts. A snapshot can degrade startup latency, never
//! correctness — the cache's canon-string comparison still guards
//! every probe, so even a semantically stale-but-wellformed snapshot
//! can only miss, not serve a wrong plan.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use mheta_obs::json::{from_str, str_field, u64_field, Value};

use crate::cache::PlanCache;
use crate::planner::Plan;
use crate::request::{fnv1a64, strategy_by_name};

/// The snapshot schema identifier.
pub const SCHEMA: &str = "mheta-plancache/v1";

/// Why a snapshot file was rejected. Every case means "cold start",
/// never a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read (missing, permissions, not UTF-8).
    Unreadable(String),
    /// The contents were not a well-formed snapshot document
    /// (truncated, bad JSON, missing or mistyped fields).
    Malformed(String),
    /// The schema field named a different (or future) format.
    Schema(String),
    /// The payload did not hash to the stored checksum: the file was
    /// corrupted after it was written.
    Checksum {
        /// The checksum the file claims.
        stored: String,
        /// The checksum the payload actually hashes to.
        computed: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unreadable(e) => write!(f, "unreadable snapshot: {e}"),
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::Schema(s) => {
                write!(f, "snapshot schema `{s}` is not `{SCHEMA}`")
            }
            SnapshotError::Checksum { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored}, computed {computed}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex16(field: &str, s: &str) -> Result<u64, SnapshotError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| SnapshotError::Malformed(format!("field `{field}`: expected 16-hex u64")))
}

fn plan_value(plan: &Plan) -> Value {
    Value::object(vec![
        (
            "rows",
            Value::Array(plan.rows.iter().map(|&r| Value::UInt(r as u64)).collect()),
        ),
        // IEEE 754 bits, not a decimal rendering: the round trip must
        // be the identity on every float.
        (
            "predicted_ns_bits",
            Value::Str(hex16(plan.predicted_ns.to_bits())),
        ),
        ("winner", Value::Str(plan.winner.name().to_string())),
        ("total_evals", Value::UInt(plan.total_evals as u64)),
    ])
}

fn parse_plan(v: &Value) -> Result<Plan, SnapshotError> {
    let malformed = |e: &dyn fmt::Display| SnapshotError::Malformed(format!("plan: {e}"));
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| SnapshotError::Malformed("plan: field `rows`: expected array".into()))?
        .iter()
        .map(|r| r.as_u64().map(|r| r as usize))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| SnapshotError::Malformed("plan: rows must be unsigned".into()))?;
    let bits_hex = str_field(v, "predicted_ns_bits").map_err(|e| malformed(&e))?;
    let predicted_ns = f64::from_bits(parse_hex16("predicted_ns_bits", bits_hex)?);
    let winner_name = str_field(v, "winner").map_err(|e| malformed(&e))?;
    let winner = strategy_by_name(winner_name)
        .ok_or_else(|| SnapshotError::Malformed(format!("plan: unknown winner `{winner_name}`")))?;
    let total_evals = u64_field(v, "total_evals").map_err(|e| malformed(&e))? as usize;
    Ok(Plan {
        rows,
        predicted_ns,
        winner,
        total_evals,
    })
}

/// Render the cache's current contents as the full snapshot document
/// (schema + checksum + payload).
#[must_use]
pub fn snapshot_value(cache: &PlanCache) -> Value {
    let entries = cache
        .export()
        .into_iter()
        .map(|(key, canon, plan)| {
            Value::object(vec![
                ("key", Value::Str(hex16(key))),
                ("canon", Value::Str(canon)),
                ("plan", plan_value(&plan)),
            ])
        })
        .collect();
    let payload = Value::object(vec![("entries", Value::Array(entries))]);
    let checksum = hex16(fnv1a64(payload.to_json().as_bytes()));
    Value::object(vec![
        ("schema", Value::Str(SCHEMA.into())),
        ("checksum", Value::Str(checksum)),
        ("payload", payload),
    ])
}

/// Save the cache to `path` atomically (write a `.tmp` sibling, fsync
/// it, rename over the target, fsync the directory). Returns the
/// number of entries saved.
pub fn save(cache: &PlanCache, path: &Path) -> io::Result<usize> {
    let doc = snapshot_value(cache);
    let n = doc
        .get("payload")
        .and_then(|p| p.get("entries"))
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, doc.to_json().as_bytes())?;
        // Without this, a power loss can make the rename durable while
        // the data is not, leaving a truncated snapshot behind the new
        // name (the loader rejects it, but the warm start is lost).
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // And make the rename itself durable: fsync the parent directory.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(n)
}

/// Parse and verify a snapshot document, returning its entries.
pub fn parse(text: &str) -> Result<Vec<(u64, String, Plan)>, SnapshotError> {
    let doc = from_str(text).map_err(|e| SnapshotError::Malformed(format!("{e:?}")))?;
    let schema = str_field(&doc, "schema")
        .map_err(|e| SnapshotError::Malformed(e.to_string()))?
        .to_string();
    if schema != SCHEMA {
        return Err(SnapshotError::Schema(schema));
    }
    let stored = str_field(&doc, "checksum")
        .map_err(|e| SnapshotError::Malformed(e.to_string()))?
        .to_string();
    let payload = doc
        .get("payload")
        .ok_or_else(|| SnapshotError::Malformed("field `payload`: missing".into()))?;
    // Verify against the payload's canonical re-rendering: the writer
    // produced exactly this rendering, so any surviving corruption
    // shows up as a different hash here.
    let computed = hex16(fnv1a64(payload.to_json().as_bytes()));
    if stored != computed {
        return Err(SnapshotError::Checksum { stored, computed });
    }
    let entries = payload
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            SnapshotError::Malformed("field `payload.entries`: expected array".into())
        })?;
    entries
        .iter()
        .map(|e| {
            let key_hex =
                str_field(e, "key").map_err(|e| SnapshotError::Malformed(e.to_string()))?;
            let key = parse_hex16("key", key_hex)?;
            let canon = str_field(e, "canon")
                .map_err(|e| SnapshotError::Malformed(e.to_string()))?
                .to_string();
            let plan = parse_plan(
                e.get("plan")
                    .ok_or_else(|| SnapshotError::Malformed("field `plan`: missing".into()))?,
            )?;
            Ok((key, canon, plan))
        })
        .collect()
}

/// Load and verify the snapshot at `path`, returning its entries.
pub fn load(path: &Path) -> Result<Vec<(u64, String, Plan)>, SnapshotError> {
    let text = fs::read_to_string(path).map_err(|e| SnapshotError::Unreadable(e.to_string()))?;
    parse(&text)
}

/// Insert loaded entries into `cache` (in snapshot order, which
/// preserves per-shard recency). Returns how many were restored.
pub fn restore(cache: &PlanCache, entries: Vec<(u64, String, Plan)>) -> usize {
    let n = entries.len();
    for (key, canon, plan) in entries {
        cache.insert(key, &canon, plan);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheta_dist::Strategy;

    fn plan(score: f64) -> Plan {
        Plan {
            rows: vec![40, 30, 20, 10],
            predicted_ns: score,
            winner: Strategy::Annealing,
            total_evals: 97,
        }
    }

    fn populated() -> PlanCache {
        let c = PlanCache::new(4, 16);
        c.insert(0x1111_2222_3333_4444, r#"{"a":1}"#, plan(123.456));
        c.insert(0xaaaa_bbbb_cccc_dddd, r#"{"b":"x\"y"}"#, plan(0.1 + 0.2));
        c
    }

    #[test]
    fn round_trip_is_bitwise_identical() {
        let c = populated();
        let text = snapshot_value(&c).to_json();
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 2);
        let restored = PlanCache::new(4, 16);
        assert_eq!(restore(&restored, entries), 2);
        let orig = c.export();
        let back = restored.export();
        assert_eq!(orig.len(), back.len());
        for ((k1, c1, p1), (k2, c2, p2)) in orig.iter().zip(back.iter()) {
            assert_eq!(k1, k2);
            assert_eq!(c1, c2);
            assert_eq!(p1.rows, p2.rows);
            assert_eq!(
                p1.predicted_ns.to_bits(),
                p2.predicted_ns.to_bits(),
                "float must round-trip bitwise"
            );
            assert_eq!(p1.winner, p2.winner);
            assert_eq!(p1.total_evals, p2.total_evals);
        }
        // And the re-snapshot is byte-identical.
        assert_eq!(text, snapshot_value(&restored).to_json());
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join(format!("mheta-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plancache.json");
        let c = populated();
        assert_eq!(save(&c, &path).unwrap(), 2);
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_unreadable_not_a_panic() {
        let err = load(Path::new("/nonexistent/mheta/plancache.json")).unwrap_err();
        assert!(matches!(err, SnapshotError::Unreadable(_)));
    }

    #[test]
    fn truncation_is_rejected() {
        let text = snapshot_value(&populated()).to_json();
        for cut in [1, text.len() / 2, text.len() - 1] {
            let err = parse(&text[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Malformed(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = snapshot_value(&populated())
            .to_json()
            .replace("mheta-plancache/v1", "mheta-plancache/v9");
        assert!(matches!(
            parse(&text).unwrap_err(),
            SnapshotError::Schema(_)
        ));
    }

    #[test]
    fn payload_tamper_is_rejected_by_checksum() {
        let text = snapshot_value(&populated()).to_json();
        let tampered = text.replacen("\"total_evals\":97", "\"total_evals\":98", 1);
        assert_ne!(text, tampered, "tamper must apply");
        assert!(matches!(
            parse(&tampered).unwrap_err(),
            SnapshotError::Checksum { .. }
        ));
    }

    #[test]
    fn empty_cache_snapshots_and_restores() {
        let c = PlanCache::new(2, 4);
        let entries = parse(&snapshot_value(&c).to_json()).unwrap();
        assert!(entries.is_empty());
    }
}
