//! Sharded, lock-striped LRU plan cache.
//!
//! Entries are keyed by the canonical FNV-1a content hash of the
//! request ([`crate::request::PlanRequest::key`]); the canonical JSON
//! itself is stored alongside and compared on every probe, so a hash
//! collision degrades to a miss instead of serving the wrong plan.
//!
//! The map is striped into `shards` independent `Mutex`-protected
//! shards selected by the key's high bits, so concurrent requests for
//! different keys rarely contend. Each shard runs its own exact LRU
//! over a small vector (capacities are tens of entries per shard;
//! linear scans are cheaper than pointer-chasing at that size).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mheta_obs::json::Value;

use crate::planner::Plan;

struct Entry {
    key: u64,
    canon: String,
    plan: Plan,
    last_used: u64,
}

struct Shard {
    entries: Vec<Entry>,
    tick: u64,
}

/// Lock-striped LRU cache of finished plans.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// A cache of `shards` stripes holding at most `capacity` entries
    /// in total (rounded up to a multiple of the shard count). Both
    /// arguments are clamped to at least 1.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::new(),
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits: FNV-1a mixes them well, and the low bits already
        // pick the LRU slot ordering inside a shard.
        let idx = (key >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Probe for `key`; `canon` disambiguates hash collisions. Bumps
    /// the hit/miss counters and the entry's recency on hit.
    #[must_use]
    pub fn get(&self, key: u64, canon: &str) -> Option<Plan> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.canon == canon)
        {
            e.last_used = tick;
            let plan = e.plan.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert (or refresh) the plan for `key`, evicting the shard's
    /// least-recently-used entry if it is full.
    pub fn insert(&self, key: u64, canon: &str, plan: Plan) {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.canon == canon)
        {
            e.plan = plan;
            e.last_used = tick;
            return;
        }
        if shard.entries.len() >= self.capacity_per_shard {
            let lru = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("full shard is nonempty");
            shard.entries.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.entries.push(Entry {
            key,
            canon: canon.to_string(),
            plan,
            last_used: tick,
        });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every cached plan (e.g. after a model change); returns how
    /// many entries were invalidated.
    pub fn invalidate_all(&self) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            dropped += shard.entries.len();
            shard.entries.clear();
        }
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drop the entry for one key, if present.
    pub fn invalidate(&self, key: u64, canon: &str) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let before = shard.entries.len();
        shard
            .entries
            .retain(|e| !(e.key == key && e.canon == canon));
        let dropped = before - shard.entries.len();
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped > 0
    }

    /// Export every entry as `(key, canonical JSON, plan)`,
    /// least-recently-used first within each shard — so re-`insert`ing
    /// the export in order (see [`crate::snapshot`]) reproduces each
    /// shard's recency ordering.
    #[must_use]
    pub fn export(&self) -> Vec<(u64, String, Plan)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut entries: Vec<&Entry> = shard.entries.iter().collect();
            entries.sort_by_key(|e| e.last_used);
            out.extend(
                entries
                    .into_iter()
                    .map(|e| (e.key, e.canon.clone(), e.plan.clone())),
            );
        }
        out
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no plans are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Capacity evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Counters and occupancy as a JSON value.
    #[must_use]
    pub fn stats(&self) -> Value {
        Value::object(vec![
            ("entries", Value::UInt(self.len() as u64)),
            ("shards", Value::UInt(self.shards.len() as u64)),
            (
                "capacity",
                Value::UInt((self.capacity_per_shard * self.shards.len()) as u64),
            ),
            ("hits", Value::UInt(self.hits())),
            ("misses", Value::UInt(self.misses())),
            (
                "insertions",
                Value::UInt(self.insertions.load(Ordering::Relaxed)),
            ),
            ("evictions", Value::UInt(self.evictions())),
            (
                "invalidations",
                Value::UInt(self.invalidations.load(Ordering::Relaxed)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheta_dist::Strategy;

    fn plan(score: f64) -> Plan {
        Plan {
            rows: vec![1, 2, 3],
            predicted_ns: score,
            winner: Strategy::Gbs,
            total_evals: 1,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = PlanCache::new(4, 16);
        assert!(c.get(7, "a").is_none());
        c.insert(7, "a", plan(1.0));
        let got = c.get(7, "a").unwrap();
        assert_eq!(got.predicted_ns, 1.0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        // Same hash, different canonical content: a collision is a miss.
        assert!(c.get(7, "b").is_none());
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_per_shard() {
        // One shard, capacity 2: inserting a third entry evicts the
        // stalest one.
        let c = PlanCache::new(1, 2);
        c.insert(1, "k1", plan(1.0));
        c.insert(2, "k2", plan(2.0));
        assert!(c.get(1, "k1").is_some()); // refresh key 1
        c.insert(3, "k3", plan(3.0)); // evicts key 2
        assert_eq!(c.evictions(), 1);
        assert!(c.get(1, "k1").is_some());
        assert!(c.get(2, "k2").is_none());
        assert!(c.get(3, "k3").is_some());
    }

    #[test]
    fn invalidation_drops_entries_and_counts() {
        let c = PlanCache::new(4, 16);
        c.insert(1, "k1", plan(1.0));
        c.insert(2, "k2", plan(2.0));
        assert!(c.invalidate(1, "k1"));
        assert!(!c.invalidate(1, "k1"));
        assert_eq!(c.invalidate_all(), 1);
        assert!(c.is_empty());
        let stats = c.stats();
        assert_eq!(stats.get("invalidations").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn insert_refreshes_existing_entry() {
        let c = PlanCache::new(2, 8);
        c.insert(5, "k", plan(1.0));
        c.insert(5, "k", plan(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(5, "k").unwrap().predicted_ns, 9.0);
    }
}
