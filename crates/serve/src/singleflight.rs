//! Single-flight coalescing of identical in-flight requests.
//!
//! The first caller to [`SingleFlight::enter`] a key becomes the
//! **leader** and actually does the work; every caller arriving while
//! the leader is in flight becomes a **follower** and just waits for
//! the leader's published result. Keys are the request's canonical
//! JSON (not its hash), so two genuinely different requests can never
//! coalesce.
//!
//! The contract that keeps followers from hanging: a leader MUST call
//! [`SingleFlight::complete`] on every exit path — success, search
//! failure, and admission-control shed alike all publish a result.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One in-flight computation's publication slot.
pub struct Flight<T> {
    slot: Mutex<Option<T>>,
    done: Condvar,
}

impl<T: Clone> Flight<T> {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Block until the leader publishes, then return the result.
    pub fn wait(&self) -> T {
        self.wait_until(None).expect("untimed wait cannot expire")
    }

    /// Block until the leader publishes or `deadline` passes. `None`
    /// means no deadline (never returns `None`); `Some(None)` return
    /// means the deadline expired with the flight still unresolved —
    /// the follower gives up *without* disturbing the leader, which
    /// keeps working for the rest of the coalition.
    pub fn wait_until(&self, deadline: Option<Instant>) -> Option<T> {
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(v) = slot.as_ref() {
                return Some(v.clone());
            }
            match deadline {
                None => slot = self.done.wait(slot).expect("flight slot poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self
                        .done
                        .wait_timeout(slot, d - now)
                        .expect("flight slot poisoned");
                    slot = guard;
                }
            }
        }
    }

    fn publish(&self, value: T) {
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        *slot = Some(value);
        drop(slot);
        self.done.notify_all();
    }
}

/// Whether `enter` made the caller the leader or a follower.
pub enum Entry<T> {
    /// This caller owns the work and must `complete` the flight.
    Leader(Arc<Flight<T>>),
    /// Another caller is already working this key; wait on the flight.
    Follower(Arc<Flight<T>>),
}

/// The single-flight registry: canonical key → in-flight computation.
pub struct SingleFlight<T> {
    flights: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`, creating it (and becoming leader) if
    /// none is in progress.
    pub fn enter(&self, key: &str) -> Entry<T> {
        let mut flights = self.flights.lock().expect("flight map poisoned");
        if let Some(f) = flights.get(key) {
            Entry::Follower(Arc::clone(f))
        } else {
            let f = Arc::new(Flight::new());
            flights.insert(key.to_string(), Arc::clone(&f));
            Entry::Leader(f)
        }
    }

    /// Publish the leader's result and retire the flight: the key is
    /// removed first, so requests arriving after this point start a
    /// fresh flight (or hit the cache) rather than reading a stale one.
    pub fn complete(&self, key: &str, flight: &Arc<Flight<T>>, value: T) {
        {
            let mut flights = self.flights.lock().expect("flight map poisoned");
            // Only remove our own flight; a successor leader may have
            // re-registered the key already.
            if flights.get(key).is_some_and(|cur| Arc::ptr_eq(cur, flight)) {
                flights.remove(key);
            }
        }
        flight.publish(value);
    }

    /// Number of keys currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight map poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn leader_then_followers_share_one_result() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let leaders = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let sf = Arc::clone(&sf);
                    let leaders = Arc::clone(&leaders);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        match sf.enter("k") {
                            Entry::Leader(f) => {
                                leaders.fetch_add(1, Ordering::Relaxed);
                                // Linger so the others have time to join.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                sf.complete("k", &f, 42);
                                42
                            }
                            Entry::Follower(f) => f.wait(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == 42));
        assert_eq!(leaders.load(Ordering::Relaxed), 1, "exactly one leader");
        assert_eq!(sf.in_flight(), 0, "flight retired");
    }

    #[test]
    fn different_keys_do_not_coalesce() {
        let sf = SingleFlight::<u64>::new();
        let Entry::Leader(fa) = sf.enter("a") else {
            panic!("first entrant must lead")
        };
        let Entry::Leader(fb) = sf.enter("b") else {
            panic!("distinct key must get its own flight")
        };
        sf.complete("a", &fa, 1);
        sf.complete("b", &fb, 2);
        assert_eq!(fa.wait(), 1);
        assert_eq!(fb.wait(), 2);
    }

    #[test]
    fn key_is_reusable_after_completion() {
        let sf = SingleFlight::<u64>::new();
        let Entry::Leader(f) = sf.enter("k") else {
            panic!()
        };
        sf.complete("k", &f, 7);
        assert!(matches!(sf.enter("k"), Entry::Leader(_)));
    }
}
