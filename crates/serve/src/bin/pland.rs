//! `pland` — the distribution-planning daemon.
//!
//! Listens for JSON-lines requests over TCP (see `mheta_serve::wire`
//! for the protocol) and serves plans until a client sends
//! `{"op":"shutdown"}` or the process receives SIGTERM/SIGINT. Either
//! way the daemon **drains**: new plan requests are shed with a
//! structured `draining` error, in-flight requests run to completion
//! (bounded by `--drain-deadline-ms`), and — when `--snapshot` is set
//! — the plan cache is saved on the way down so the next boot
//! warm-starts from it.
//!
//! ```text
//! pland [--addr HOST:PORT] [--workers N] [--queue N]
//!       [--cache-capacity N] [--no-cache] [--no-coalesce]
//!       [--recorder-capacity N]
//!       [--breaker-threshold N] [--breaker-open-ms N]
//!       [--snapshot PATH] [--snapshot-interval-ms N]
//!       [--drain-deadline-ms N] [--read-timeout-ms N]
//!       [--write-timeout-ms N]
//! ```
//!
//! The flight recorder is always on (`--recorder-capacity 0` disables
//! it). On panic the daemon dumps the recorder's last events as JSON
//! to stderr before dying, so a crash leaves a black box behind.
//!
//! Lifecycle events (`drain.begin`, `drain.end`, `snapshot.load`,
//! `snapshot.save`, `snapshot.reject`, `conn.timeout`, shed events)
//! are logged to stderr as structured one-line JSON.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mheta_obs::json::Value;
use mheta_serve::{wire, Lifecycle, Planner, PlannerConfig, ServeConfig};

/// SIGTERM/SIGINT capture without a libc dependency: a raw binding to
/// `signal(2)` installing a handler whose body is a single atomic
/// store (the only thing that is async-signal-safe anyway).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        FIRED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32);
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }

    pub fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }
}

fn log_event(event: &str, mut fields: Vec<(&str, Value)>) {
    let mut pairs = vec![("event", Value::Str(event.to_string()))];
    pairs.append(&mut fields);
    eprintln!("{}", Value::object(pairs).to_json());
}

struct Args {
    addr: String,
    cfg: PlannerConfig,
    serve_cfg: ServeConfig,
    snapshot: Option<PathBuf>,
    snapshot_interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7463".to_string(),
        cfg: PlannerConfig::default(),
        serve_cfg: ServeConfig::default(),
        snapshot: None,
        snapshot_interval_ms: 5_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache-capacity" => {
                args.cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--recorder-capacity" => {
                args.cfg.recorder_capacity = value("--recorder-capacity")?
                    .parse()
                    .map_err(|e| format!("--recorder-capacity: {e}"))?;
            }
            "--breaker-threshold" => {
                args.cfg.breaker_threshold = value("--breaker-threshold")?
                    .parse()
                    .map_err(|e| format!("--breaker-threshold: {e}"))?;
            }
            "--breaker-open-ms" => {
                args.cfg.breaker_open_ms = value("--breaker-open-ms")?
                    .parse()
                    .map_err(|e| format!("--breaker-open-ms: {e}"))?;
            }
            "--snapshot" => args.snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--snapshot-interval-ms" => {
                args.snapshot_interval_ms = value("--snapshot-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--snapshot-interval-ms: {e}"))?;
            }
            "--drain-deadline-ms" => {
                args.serve_cfg.drain_deadline_ms = value("--drain-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-deadline-ms: {e}"))?;
            }
            "--read-timeout-ms" => {
                args.serve_cfg.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
            }
            "--write-timeout-ms" => {
                args.serve_cfg.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
            }
            "--no-cache" => args.cfg.cache_enabled = false,
            "--no-coalesce" => args.cfg.coalesce_enabled = false,
            "--help" | "-h" => {
                println!(
                    "pland [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache-capacity N] [--no-cache] [--no-coalesce] \
                     [--recorder-capacity N] [--breaker-threshold N] \
                     [--breaker-open-ms N] [--snapshot PATH] \
                     [--snapshot-interval-ms N] [--drain-deadline-ms N] \
                     [--read-timeout-ms N] [--write-timeout-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn save_snapshot(planner: &Planner, path: &std::path::Path, when: &str) {
    match planner.save_snapshot(path) {
        Ok(n) => log_event(
            "snapshot.save",
            vec![
                ("entries", Value::UInt(n as u64)),
                ("path", Value::Str(path.display().to_string())),
                ("when", Value::Str(when.to_string())),
            ],
        ),
        Err(e) => log_event(
            "snapshot.save_failed",
            vec![
                ("path", Value::Str(path.display().to_string())),
                ("error", Value::Str(e.to_string())),
            ],
        ),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pland: {e}");
            return ExitCode::FAILURE;
        }
    };
    #[cfg(unix)]
    sig::install();

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pland: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The OS may have picked the port (":0"); report the actual one so
    // scripts can connect.
    match listener.local_addr() {
        Ok(addr) => println!("pland: listening on {addr}"),
        Err(_) => println!("pland: listening on {}", args.addr),
    }
    let planner = Arc::new(Planner::new(args.cfg));

    // Warm start: restore the plan cache from the last snapshot. Any
    // rejection — missing file, truncation, checksum or schema
    // mismatch — is logged and the daemon cold-starts; a bad snapshot
    // can never take the service down.
    if let Some(path) = &args.snapshot {
        match planner.load_snapshot(path) {
            Ok(n) => log_event(
                "snapshot.load",
                vec![
                    ("entries", Value::UInt(n as u64)),
                    ("path", Value::Str(path.display().to_string())),
                ],
            ),
            Err(e) => log_event(
                "snapshot.reject",
                vec![
                    ("path", Value::Str(path.display().to_string())),
                    ("error", Value::Str(e.to_string())),
                ],
            ),
        }
    }

    // Black box: any panic (accept loop or connection thread) dumps
    // the flight recorder to stderr before the default hook prints the
    // backtrace.
    if let Some(recorder) = planner.recorder() {
        let recorder = Arc::clone(recorder);
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!("pland: panic — dumping flight recorder");
            eprintln!("{}", recorder.dump_json());
            default_hook(info);
        }));
    }

    let lifecycle = Arc::new(Lifecycle::new());

    // Signal watcher: the handler itself only stores a flag; this
    // thread turns the flag into a drain.
    #[cfg(unix)]
    {
        let lifecycle = Arc::clone(&lifecycle);
        std::thread::spawn(move || loop {
            if sig::fired() {
                log_event("signal.drain", vec![]);
                lifecycle.begin_drain();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    // Periodic snapshots bound how much warm-start coverage a crash
    // (as opposed to a drain) can lose.
    if let Some(path) = args.snapshot.clone() {
        if args.snapshot_interval_ms > 0 {
            let planner = Arc::clone(&planner);
            let lifecycle = Arc::clone(&lifecycle);
            let interval = Duration::from_millis(args.snapshot_interval_ms);
            std::thread::spawn(move || loop {
                std::thread::sleep(interval);
                if lifecycle.is_draining() {
                    return; // the final save happens after the drain
                }
                save_snapshot(&planner, &path, "periodic");
            });
        }
    }

    let result = wire::serve_with(listener, Arc::clone(&planner), lifecycle, args.serve_cfg);
    // Drain finished (or hit its deadline): persist the cache so the
    // next boot warm-starts.
    if let Some(path) = &args.snapshot {
        save_snapshot(&planner, path, "drain");
    }
    match result {
        Ok(()) => {
            println!("pland: shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pland: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
