//! `pland` — the distribution-planning daemon.
//!
//! Listens for JSON-lines requests over TCP (see `mheta_serve::wire`
//! for the protocol) and serves plans until a client sends
//! `{"op":"shutdown"}`.
//!
//! ```text
//! pland [--addr HOST:PORT] [--workers N] [--queue N]
//!       [--cache-capacity N] [--no-cache] [--no-coalesce]
//!       [--recorder-capacity N]
//! ```
//!
//! The flight recorder is always on (`--recorder-capacity 0` disables
//! it). On panic the daemon dumps the recorder's last events as JSON
//! to stderr before dying, so a crash leaves a black box behind.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use mheta_serve::{wire, Planner, PlannerConfig};

struct Args {
    addr: String,
    cfg: PlannerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7463".to_string(),
        cfg: PlannerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache-capacity" => {
                args.cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--recorder-capacity" => {
                args.cfg.recorder_capacity = value("--recorder-capacity")?
                    .parse()
                    .map_err(|e| format!("--recorder-capacity: {e}"))?;
            }
            "--no-cache" => args.cfg.cache_enabled = false,
            "--no-coalesce" => args.cfg.coalesce_enabled = false,
            "--help" | "-h" => {
                println!(
                    "pland [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache-capacity N] [--no-cache] [--no-coalesce] \
                     [--recorder-capacity N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pland: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pland: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The OS may have picked the port (":0"); report the actual one so
    // scripts can connect.
    match listener.local_addr() {
        Ok(addr) => println!("pland: listening on {addr}"),
        Err(_) => println!("pland: listening on {}", args.addr),
    }
    let planner = Arc::new(Planner::new(args.cfg));

    // Black box: any panic (accept loop or connection thread) dumps
    // the flight recorder to stderr before the default hook prints the
    // backtrace.
    if let Some(recorder) = planner.recorder() {
        let recorder = Arc::clone(recorder);
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!("pland: panic — dumping flight recorder");
            eprintln!("{}", recorder.dump_json());
            default_hook(info);
        }));
    }

    match wire::serve(listener, planner) {
        Ok(()) => {
            println!("pland: shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pland: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
