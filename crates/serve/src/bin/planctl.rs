//! `planctl` — client for the `pland` planning daemon.
//!
//! ```text
//! planctl [--addr HOST:PORT] ping
//! planctl [--addr HOST:PORT] plan --app jacobi [--size small] --arch DC
//!         [--prefetch] [--evals N] [--seed N] [--retries N] [--no-trace]
//! planctl [--addr HOST:PORT] stats
//! planctl [--addr HOST:PORT] metrics
//! planctl [--addr HOST:PORT] dump
//! planctl [--addr HOST:PORT] invalidate
//! planctl [--addr HOST:PORT] shutdown
//! ```
//!
//! Sends one JSON-lines request and prints the daemon's one-line JSON
//! response on stdout. Exits nonzero when the response has
//! `"ok":false` (so shell scripts can gate on success). Any failure —
//! unreachable daemon, malformed response — is a clear one-line error
//! on stderr, never a panic.
//!
//! `plan` mints a client-side root trace and propagates it in the
//! request's `trace` object; the trace ID is echoed on stderr so the
//! caller can grep the daemon's span log and flight-recorder dump for
//! the same request (`--no-trace` suppresses this and lets the daemon
//! mint its own root).
//!
//! `metrics` prints the daemon's Prometheus text-format exposition
//! verbatim (scrape-ready: pipe it to a file a node_exporter-style
//! textfile collector picks up). `dump` pretty-prints the
//! flight-recorder document (`mheta-flight/v1`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use mheta_obs::json::{from_str, Value};
use mheta_obs::TraceContext;

fn usage() -> String {
    "planctl [--addr HOST:PORT] <ping|stats|metrics|dump|invalidate|shutdown|plan> \
     [plan: --app NAME [--size small|default] --arch ARCH [--prefetch] \
     [--evals N] [--seed N] [--retries N] [--no-trace]]"
        .to_string()
}

fn build_request(cmd: &str, args: &mut impl Iterator<Item = String>) -> Result<Value, String> {
    match cmd {
        "ping" | "stats" | "metrics" | "dump" | "invalidate" | "shutdown" => {
            Ok(Value::object(vec![("op", Value::Str(cmd.to_string()))]))
        }
        "plan" => {
            let mut app = None;
            let mut size = "small".to_string();
            let mut arch = None;
            let mut prefetch = false;
            let mut trace = true;
            let mut search: Vec<(&str, Value)> = Vec::new();
            while let Some(flag) = args.next() {
                let mut value = |name: &str| {
                    args.next()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match flag.as_str() {
                    "--app" => app = Some(value("--app")?),
                    "--size" => size = value("--size")?,
                    "--arch" => arch = Some(value("--arch")?),
                    "--prefetch" => prefetch = true,
                    "--no-trace" => trace = false,
                    "--evals" => {
                        let n: u64 = value("--evals")?
                            .parse()
                            .map_err(|e| format!("--evals: {e}"))?;
                        search.push(("evals", Value::UInt(n)));
                    }
                    "--seed" => {
                        let n: u64 = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                        search.push(("seed", Value::UInt(n)));
                    }
                    "--retries" => {
                        let n: u64 = value("--retries")?
                            .parse()
                            .map_err(|e| format!("--retries: {e}"))?;
                        search.push(("retries", Value::UInt(n)));
                    }
                    other => return Err(format!("unknown plan flag `{other}`")),
                }
            }
            let app = app.ok_or("plan requires --app")?;
            let arch = arch.ok_or("plan requires --arch")?;
            let mut pairs = vec![
                ("op", Value::Str("plan".into())),
                (
                    "app",
                    Value::object(vec![("name", Value::Str(app)), ("size", Value::Str(size))]),
                ),
                ("arch", Value::Str(arch)),
                ("prefetch", Value::Bool(prefetch)),
            ];
            if !search.is_empty() {
                pairs.push(("search", Value::object(search)));
            }
            if trace {
                let ctx = TraceContext::root();
                eprintln!("planctl: trace_id {}", ctx.trace_hex());
                pairs.push((
                    "trace",
                    Value::object(vec![
                        ("trace_id", Value::Str(ctx.trace_hex())),
                        ("span_id", Value::Str(ctx.span_hex())),
                    ]),
                ));
            }
            Ok(Value::object(pairs))
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut addr = "127.0.0.1:7463".to_string();
    if args.peek().map(String::as_str) == Some("--addr") {
        args.next();
        match args.next() {
            Some(a) => addr = a,
            None => {
                eprintln!("planctl: --addr requires a value");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(cmd) = args.next() else {
        eprintln!("planctl: {}", usage());
        return ExitCode::FAILURE;
    };
    let request = match build_request(&cmd, &mut args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planctl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("planctl: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("planctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = writeln!(writer, "{}", request.to_json()).and_then(|()| writer.flush()) {
        eprintln!("planctl: send failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut line = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut line) {
        eprintln!("planctl: read failed: {e}");
        return ExitCode::FAILURE;
    }
    let line = line.trim_end();
    if line.is_empty() {
        eprintln!("planctl: daemon closed the connection without replying");
        return ExitCode::FAILURE;
    }
    let parsed = match from_str(line) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("planctl: malformed response from daemon: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let ok = parsed.get("ok") == Some(&Value::Bool(true));
    // `metrics` and `dump` print their payload in its native shape
    // (scrape text / pretty JSON); everything else echoes the line.
    match cmd.as_str() {
        "metrics" if ok => match parsed.get("prometheus").and_then(Value::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("planctl: malformed response from daemon: missing `prometheus`");
                return ExitCode::FAILURE;
            }
        },
        "dump" if ok => match parsed.get("flight") {
            Some(flight) => println!("{}", flight.to_json_pretty()),
            None => {
                eprintln!("planctl: malformed response from daemon: missing `flight`");
                return ExitCode::FAILURE;
            }
        },
        _ => println!("{line}"),
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
