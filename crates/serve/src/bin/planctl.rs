//! `planctl` — client for the `pland` planning daemon.
//!
//! ```text
//! planctl [--addr HOST:PORT] [--max-retries N] [--timeout-ms N] ping
//! planctl [--addr HOST:PORT] plan --app jacobi [--size small] --arch DC
//!         [--prefetch] [--evals N] [--seed N] [--retries N]
//!         [--deadline-ms N] [--no-trace]
//! planctl [--addr HOST:PORT] stats
//! planctl [--addr HOST:PORT] metrics
//! planctl [--addr HOST:PORT] dump
//! planctl [--addr HOST:PORT] invalidate
//! planctl [--addr HOST:PORT] shutdown
//! ```
//!
//! Sends one JSON-lines request and prints the daemon's one-line JSON
//! response on stdout. Exits nonzero when the response has
//! `"ok":false` (so shell scripts can gate on success). Any failure —
//! unreachable daemon, malformed response — is a clear one-line error
//! on stderr, never a panic.
//!
//! ## Retries
//!
//! With `--max-retries N` (default 0: single-shot), planctl retries
//! transient failures: connection refused/reset (the daemon is
//! restarting) and the structured `overloaded`, `draining`, and
//! `circuit_open` sheds. Each retry backs off exponentially from 50 ms
//! with ±25% jitter, floored at the server's `retry_after_ms` hint
//! when one was given; `--timeout-ms` caps the total time spent
//! including backoffs (0 = no cap). Retries reuse the same request
//! (and trace), so the daemon sees one trace ID across all attempts.
//!
//! `plan` mints a client-side root trace and propagates it in the
//! request's `trace` object; the trace ID is echoed on stderr so the
//! caller can grep the daemon's span log and flight-recorder dump for
//! the same request (`--no-trace` suppresses this and lets the daemon
//! mint its own root). `--deadline-ms` attaches an end-to-end budget:
//! the daemon answers with its best incumbent (`"degraded":true`) if
//! the budget expires mid-search.
//!
//! `metrics` prints the daemon's Prometheus text-format exposition
//! verbatim (scrape-ready: pipe it to a file a node_exporter-style
//! textfile collector picks up). `dump` pretty-prints the
//! flight-recorder document (`mheta-flight/v1`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use mheta_obs::json::{from_str, Value};
use mheta_obs::TraceContext;

fn usage() -> String {
    "planctl [--addr HOST:PORT] [--max-retries N] [--timeout-ms N] \
     <ping|stats|metrics|dump|invalidate|shutdown|plan> \
     [plan: --app NAME [--size small|default] --arch ARCH [--prefetch] \
     [--evals N] [--seed N] [--retries N] [--deadline-ms N] [--no-trace]]"
        .to_string()
}

fn build_request(cmd: &str, args: &mut impl Iterator<Item = String>) -> Result<Value, String> {
    match cmd {
        "ping" | "stats" | "metrics" | "dump" | "invalidate" | "shutdown" => {
            Ok(Value::object(vec![("op", Value::Str(cmd.to_string()))]))
        }
        "plan" => {
            let mut app = None;
            let mut size = "small".to_string();
            let mut arch = None;
            let mut prefetch = false;
            let mut trace = true;
            let mut deadline_ms = None;
            let mut search: Vec<(&str, Value)> = Vec::new();
            while let Some(flag) = args.next() {
                let mut value = |name: &str| {
                    args.next()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match flag.as_str() {
                    "--app" => app = Some(value("--app")?),
                    "--size" => size = value("--size")?,
                    "--arch" => arch = Some(value("--arch")?),
                    "--prefetch" => prefetch = true,
                    "--no-trace" => trace = false,
                    "--deadline-ms" => {
                        let n: u64 = value("--deadline-ms")?
                            .parse()
                            .map_err(|e| format!("--deadline-ms: {e}"))?;
                        deadline_ms = Some(n);
                    }
                    "--evals" => {
                        let n: u64 = value("--evals")?
                            .parse()
                            .map_err(|e| format!("--evals: {e}"))?;
                        search.push(("evals", Value::UInt(n)));
                    }
                    "--seed" => {
                        let n: u64 = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                        search.push(("seed", Value::UInt(n)));
                    }
                    "--retries" => {
                        let n: u64 = value("--retries")?
                            .parse()
                            .map_err(|e| format!("--retries: {e}"))?;
                        search.push(("retries", Value::UInt(n)));
                    }
                    other => return Err(format!("unknown plan flag `{other}`")),
                }
            }
            let app = app.ok_or("plan requires --app")?;
            let arch = arch.ok_or("plan requires --arch")?;
            let mut pairs = vec![
                ("op", Value::Str("plan".into())),
                (
                    "app",
                    Value::object(vec![("name", Value::Str(app)), ("size", Value::Str(size))]),
                ),
                ("arch", Value::Str(arch)),
                ("prefetch", Value::Bool(prefetch)),
            ];
            if let Some(d) = deadline_ms {
                pairs.push(("deadline_ms", Value::UInt(d)));
            }
            if !search.is_empty() {
                pairs.push(("search", Value::object(search)));
            }
            if trace {
                let ctx = TraceContext::root();
                eprintln!("planctl: trace_id {}", ctx.trace_hex());
                pairs.push((
                    "trace",
                    Value::object(vec![
                        ("trace_id", Value::Str(ctx.trace_hex())),
                        ("span_id", Value::Str(ctx.span_hex())),
                    ]),
                ));
            }
            Ok(Value::object(pairs))
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// One network exchange that failed.
enum AttemptError {
    /// Worth retrying: connect/send/read failures (the daemon may be
    /// restarting).
    Transient(String),
    /// Not worth retrying: a malformed response or empty reply.
    Fatal(String),
}

/// Send `request` once and read the one-line response.
fn attempt(addr: &str, request: &str) -> Result<Value, AttemptError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| AttemptError::Transient(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| AttemptError::Transient(e.to_string()))?;
    writeln!(writer, "{request}")
        .and_then(|()| writer.flush())
        .map_err(|e| AttemptError::Transient(format!("send failed: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| AttemptError::Transient(format!("read failed: {e}")))?;
    let line = line.trim_end();
    if line.is_empty() {
        return Err(AttemptError::Transient(
            "daemon closed the connection without replying".into(),
        ));
    }
    from_str(line)
        .map_err(|e| AttemptError::Fatal(format!("malformed response from daemon: {e:?}")))
}

/// A shed the client should honor: the error kind and the server's
/// backoff hint, if the response is a retryable structured shed.
fn retryable_shed(response: &Value) -> Option<(&str, Option<u64>)> {
    if response.get("ok") == Some(&Value::Bool(true)) {
        return None;
    }
    let error = response.get("error")?;
    let kind = error.get("kind").and_then(Value::as_str)?;
    match kind {
        "overloaded" | "draining" | "circuit_open" => {
            Some((kind, error.get("retry_after_ms").and_then(Value::as_u64)))
        }
        _ => None,
    }
}

/// Exponential backoff from 50 ms with ±25% jitter, floored at the
/// server's `retry_after_ms` hint. The jitter source is the subsecond
/// wall clock — enough to de-synchronize a fleet of retrying clients
/// without an RNG.
fn backoff(attempt_no: u32, server_hint: Option<u64>) -> Duration {
    let base = 50u64.saturating_mul(1 << attempt_no.min(6));
    let nominal = base.max(server_hint.unwrap_or(0)).max(1);
    let jitter_span = (nominal / 2).max(1);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    Duration::from_millis(nominal - nominal / 4 + nanos % jitter_span)
}

struct Retry {
    max_retries: u32,
    timeout: Option<Duration>,
    started: Instant,
    used: u32,
}

impl Retry {
    /// Whether another retry fits under both caps after sleeping
    /// `delay`; books the retry (and sleeps) when it does.
    fn backoff_or_give_up(&mut self, delay: Duration, why: &str) -> bool {
        if self.used >= self.max_retries {
            return false;
        }
        if let Some(t) = self.timeout {
            if self.started.elapsed() + delay >= t {
                return false;
            }
        }
        self.used += 1;
        eprintln!(
            "planctl: {why}; retry {}/{} in {} ms",
            self.used,
            self.max_retries,
            delay.as_millis()
        );
        std::thread::sleep(delay);
        true
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut addr = "127.0.0.1:7463".to_string();
    let mut max_retries = 0u32;
    let mut timeout_ms = 0u64;
    loop {
        match args.peek().map(String::as_str) {
            Some("--addr") => {
                args.next();
                match args.next() {
                    Some(a) => addr = a,
                    None => {
                        eprintln!("planctl: --addr requires a value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some("--max-retries") => {
                args.next();
                match args.next().map(|v| v.parse::<u32>()) {
                    Some(Ok(n)) => max_retries = n,
                    _ => {
                        eprintln!("planctl: --max-retries requires an unsigned value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some("--timeout-ms") => {
                args.next();
                match args.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => timeout_ms = n,
                    _ => {
                        eprintln!("planctl: --timeout-ms requires an unsigned value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => break,
        }
    }
    let Some(cmd) = args.next() else {
        eprintln!("planctl: {}", usage());
        return ExitCode::FAILURE;
    };
    let request = match build_request(&cmd, &mut args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request_json = request.to_json();
    let mut retry = Retry {
        max_retries,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        started: Instant::now(),
        used: 0,
    };

    let parsed = loop {
        match attempt(&addr, &request_json) {
            Ok(response) => {
                if let Some((kind, hint)) = retryable_shed(&response) {
                    let delay = backoff(retry.used, hint);
                    if retry.backoff_or_give_up(delay, &format!("shed ({kind})")) {
                        continue;
                    }
                }
                break response;
            }
            Err(AttemptError::Transient(msg)) => {
                let delay = backoff(retry.used, None);
                if retry.backoff_or_give_up(delay, &msg) {
                    continue;
                }
                eprintln!("planctl: {msg}");
                return ExitCode::FAILURE;
            }
            Err(AttemptError::Fatal(msg)) => {
                eprintln!("planctl: {msg}");
                return ExitCode::FAILURE;
            }
        }
    };

    let ok = parsed.get("ok") == Some(&Value::Bool(true));
    // `metrics` and `dump` print their payload in its native shape
    // (scrape text / pretty JSON); everything else echoes the line.
    match cmd.as_str() {
        "metrics" if ok => match parsed.get("prometheus").and_then(Value::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("planctl: malformed response from daemon: missing `prometheus`");
                return ExitCode::FAILURE;
            }
        },
        "dump" if ok => match parsed.get("flight") {
            Some(flight) => println!("{}", flight.to_json_pretty()),
            None => {
                eprintln!("planctl: malformed response from daemon: missing `flight`");
                return ExitCode::FAILURE;
            }
        },
        _ => println!("{}", parsed.to_json()),
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
