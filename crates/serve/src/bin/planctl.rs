//! `planctl` — client for the `pland` planning daemon.
//!
//! ```text
//! planctl [--addr HOST:PORT] ping
//! planctl [--addr HOST:PORT] plan --app jacobi [--size small] --arch DC
//!         [--prefetch] [--evals N] [--seed N] [--retries N]
//! planctl [--addr HOST:PORT] stats
//! planctl [--addr HOST:PORT] invalidate
//! planctl [--addr HOST:PORT] shutdown
//! ```
//!
//! Sends one JSON-lines request and prints the daemon's one-line JSON
//! response on stdout. Exits nonzero when the response has
//! `"ok":false` (so shell scripts can gate on success).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use mheta_obs::json::{from_str, Value};

fn usage() -> String {
    "planctl [--addr HOST:PORT] <ping|stats|invalidate|shutdown|plan> \
     [plan: --app NAME [--size small|default] --arch ARCH [--prefetch] \
     [--evals N] [--seed N] [--retries N]]"
        .to_string()
}

fn build_request(cmd: &str, args: &mut impl Iterator<Item = String>) -> Result<Value, String> {
    match cmd {
        "ping" | "stats" | "invalidate" | "shutdown" => {
            Ok(Value::object(vec![("op", Value::Str(cmd.to_string()))]))
        }
        "plan" => {
            let mut app = None;
            let mut size = "small".to_string();
            let mut arch = None;
            let mut prefetch = false;
            let mut search: Vec<(&str, Value)> = Vec::new();
            while let Some(flag) = args.next() {
                let mut value = |name: &str| {
                    args.next()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match flag.as_str() {
                    "--app" => app = Some(value("--app")?),
                    "--size" => size = value("--size")?,
                    "--arch" => arch = Some(value("--arch")?),
                    "--prefetch" => prefetch = true,
                    "--evals" => {
                        let n: u64 = value("--evals")?
                            .parse()
                            .map_err(|e| format!("--evals: {e}"))?;
                        search.push(("evals", Value::UInt(n)));
                    }
                    "--seed" => {
                        let n: u64 = value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                        search.push(("seed", Value::UInt(n)));
                    }
                    "--retries" => {
                        let n: u64 = value("--retries")?
                            .parse()
                            .map_err(|e| format!("--retries: {e}"))?;
                        search.push(("retries", Value::UInt(n)));
                    }
                    other => return Err(format!("unknown plan flag `{other}`")),
                }
            }
            let app = app.ok_or("plan requires --app")?;
            let arch = arch.ok_or("plan requires --arch")?;
            let mut pairs = vec![
                ("op", Value::Str("plan".into())),
                (
                    "app",
                    Value::object(vec![("name", Value::Str(app)), ("size", Value::Str(size))]),
                ),
                ("arch", Value::Str(arch)),
                ("prefetch", Value::Bool(prefetch)),
            ];
            if !search.is_empty() {
                pairs.push(("search", Value::object(search)));
            }
            Ok(Value::object(pairs))
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut addr = "127.0.0.1:7463".to_string();
    if args.peek().map(String::as_str) == Some("--addr") {
        args.next();
        match args.next() {
            Some(a) => addr = a,
            None => {
                eprintln!("planctl: --addr requires a value");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(cmd) = args.next() else {
        eprintln!("planctl: {}", usage());
        return ExitCode::FAILURE;
    };
    let request = match build_request(&cmd, &mut args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planctl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("planctl: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("planctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = writeln!(writer, "{}", request.to_json()).and_then(|()| writer.flush()) {
        eprintln!("planctl: send failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut line = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut line) {
        eprintln!("planctl: read failed: {e}");
        return ExitCode::FAILURE;
    }
    let line = line.trim_end();
    if line.is_empty() {
        eprintln!("planctl: daemon closed the connection without replying");
        return ExitCode::FAILURE;
    }
    println!("{line}");
    match from_str(line) {
        Ok(v) if v.get("ok") == Some(&Value::Bool(true)) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("planctl: unparseable response: {e:?}");
            ExitCode::FAILURE
        }
    }
}
