//! The in-process planning front end.
//!
//! [`Planner::plan`] takes a request through the full lifecycle:
//!
//! ```text
//! request ── cache probe ──hit──────────────────────────▶ reply (cache)
//!               │ miss
//!               ▼
//!          single-flight ──follower── wait ─────────────▶ reply (coalesced)
//!               │ leader
//!               ▼
//!          circuit breaker ──open── fast-fail ──────────▶ Err(CircuitOpen)
//!               │ admitted
//!               ▼
//!          executor.try_submit ──queue full── shed ─────▶ Err(Overloaded)
//!               │ admitted
//!               ▼
//!          portfolio search ── cache insert ── publish ─▶ reply (fresh)
//! ```
//!
//! Every path publishes to the flight before returning, so followers
//! can never hang — a shed or failed leader sheds/fails its followers
//! too. Every path records a [`RequestSpan`] so the request track and
//! stage histograms cover shed and failed requests as well.
//!
//! ## Deadlines
//!
//! [`Planner::plan_opts`] accepts an optional end-to-end budget. The
//! deadline is computed once at arrival and threaded through every
//! stage: a coalesced follower gives up its wait when it expires
//! ([`crate::singleflight::Flight::wait_until`]), a queued job that
//! dequeues past it never starts searching, and a running search
//! converts it into `SearchCtl` cooperative cancellation. A search the
//! deadline interrupts still returns its best incumbent, flagged
//! [`PlanReply::degraded`]; [`PlanError::DeadlineExceeded`] is reserved
//! for the case where no incumbent exists at all. Degraded plans are
//! never cached — they are partial-budget answers and would poison the
//! key for future full-budget requests. They are also never silently
//! handed to a caller that did not opt in: a deadline-free follower
//! coalesced onto a flight whose leader degraded re-enters the
//! pipeline (cache probe, then a fresh flight) instead of inheriting
//! the partial answer.
//!
//! ## Circuit breaker
//!
//! Consecutive search failures on one cache-key shard trip a
//! [`CircuitBreaker`]: further requests there shed fast with
//! [`PlanError::CircuitOpen`] until a half-open probe succeeds. Only
//! genuine search failures count — sheds and deadline expiries say
//! nothing about the shard's health.
//!
//! ## Telemetry
//!
//! Every request carries a [`TraceContext`] ([`Planner::plan`] mints a
//! root; [`Planner::plan_traced`] accepts one propagated over the
//! wire). The context is stamped on the request's [`RequestSpan`]
//! (including per-strategy sub-spans from the portfolio threads), on
//! every [`FlightRecorder`] event the request emits, and on the wire
//! reply — so one `trace_id` connects the client call, the span track,
//! the flight-recorder dump, and the Perfetto flame. Coalesced
//! followers keep their own trace but **link** to the leader's
//! (`RequestSpan::link_trace_id`), so a coalition is navigable from
//! any member.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mheta_apps::{anchor_inputs, build_model};
use mheta_dist::{portfolio_search, DeltaStats, SpectrumPath, Strategy};
use mheta_obs::json::Value;
use mheta_obs::trace::id_hex;
use mheta_obs::{
    FlightRecorder, RequestSource, RequestSpan, ServiceMetrics, StrategySpan, TraceContext,
};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::PlanCache;
use crate::executor::Executor;
use crate::request::PlanRequest;
use crate::singleflight::{Entry, SingleFlight};

/// A finished distribution plan: the service's product.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The best `GEN_BLOCK` layout found (rows per node).
    pub rows: Vec<usize>,
    /// Its predicted iteration time, ns.
    pub predicted_ns: f64,
    /// Which portfolio strategy produced it.
    pub winner: Strategy,
    /// Combined evaluator calls the portfolio spent.
    pub total_evals: usize,
}

/// Why a request did not produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Admission control shed the request: the executor queue was
    /// full. Retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Model construction or the search itself failed.
    Search(String),
    /// The request's end-to-end deadline expired before any usable
    /// incumbent plan existed. (A deadline that expires *mid-search*
    /// returns the incumbent flagged [`PlanReply::degraded`] instead.)
    DeadlineExceeded {
        /// The budget the request arrived with, milliseconds.
        budget_ms: u64,
    },
    /// The circuit breaker for this request's cache-key shard is open
    /// after consecutive search failures there; the request was shed
    /// fast without queueing. Retry after the suggested backoff.
    CircuitOpen {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            PlanError::Search(msg) => write!(f, "search failed: {msg}"),
            PlanError::DeadlineExceeded { budget_ms } => {
                write!(
                    f,
                    "deadline exceeded: {budget_ms} ms budget, no incumbent plan"
                )
            }
            PlanError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit open; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A successful reply: the plan plus provenance.
#[derive(Debug, Clone)]
pub struct PlanReply {
    /// The plan.
    pub plan: Plan,
    /// How it was produced (`Fresh`, `Cache`, or `Coalesced`).
    pub source: RequestSource,
    /// The request's canonical content hash (the cache key).
    pub key: u64,
    /// The trace this request was served under.
    pub trace: TraceContext,
    /// The deadline expired mid-search: this is the best incumbent at
    /// expiry, not the full-budget answer. Degraded plans are valid
    /// (every incumbent passed the evaluator) but never cached.
    pub degraded: bool,
}

/// Planner tuning.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Search worker threads.
    pub workers: usize,
    /// Bounded executor queue depth; 0 sheds every admission (useful
    /// for deterministic overload tests).
    pub queue_capacity: usize,
    /// Plan-cache lock stripes.
    pub cache_shards: usize,
    /// Plan-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Serve repeat requests from the cache.
    pub cache_enabled: bool,
    /// Coalesce concurrent identical requests onto one search.
    pub coalesce_enabled: bool,
    /// Backoff suggested to shed clients, milliseconds.
    pub retry_after_ms: u64,
    /// Flight-recorder ring capacity (events); 0 disables the recorder
    /// entirely (used by the bench overhead A/B — production keeps the
    /// default, always-on).
    pub recorder_capacity: usize,
    /// Flight-recorder lock stripes.
    pub recorder_stripes: usize,
    /// Consecutive search failures (per cache-key shard) that trip the
    /// circuit breaker; 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker shard stays open before admitting a
    /// probe, milliseconds.
    pub breaker_open_ms: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity: 256,
            cache_enabled: true,
            coalesce_enabled: true,
            retry_after_ms: 50,
            recorder_capacity: 1024,
            recorder_stripes: 8,
            breaker_threshold: 5,
            breaker_open_ms: 1000,
        }
    }
}

/// What a leader publishes to its flight: the outcome every coalesced
/// follower inherits, plus the leader's trace so followers can link to
/// it (on the error paths too).
#[derive(Clone)]
struct FlightOutput {
    /// The plan, the search-stage duration, and the degraded flag —
    /// or the error. Deadlined followers inherit degradation (bounded
    /// latency is what they asked for); deadline-free followers of a
    /// degraded flight retry instead of accepting the partial answer.
    result: Result<(Plan, u64, bool), PlanError>,
    /// The leader's trace ID (never 0).
    leader_trace_id: u64,
}

/// What the search worker reports back to the leader thread.
struct SearchReport {
    result: Result<(Plan, SearchAux), PlanError>,
    /// When the search stage started, on the metrics clock.
    started_ns: u64,
    /// How long the search stage ran.
    search_ns: u64,
}

/// Observability side-channel of one portfolio run.
struct SearchAux {
    /// Per-strategy thread spans, offsets relative to the portfolio
    /// launch.
    strategies: Vec<StrategySpan>,
    /// Whether a cancellation criterion tripped.
    cancelled: bool,
    /// Whether the deadline criterion specifically tripped (the plan
    /// is the incumbent at expiry, not the full-budget answer).
    degraded: bool,
    /// Incremental-evaluation tallies merged across the portfolio's
    /// strategies.
    delta: DeltaStats,
}

/// The resident planning service (in-process front end).
pub struct Planner {
    cfg: PlannerConfig,
    cache: PlanCache,
    flights: SingleFlight<FlightOutput>,
    executor: Executor,
    breaker: CircuitBreaker,
    metrics: Arc<ServiceMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl Planner {
    /// Build a planner (spawns the worker pool immediately).
    #[must_use]
    pub fn new(cfg: PlannerConfig) -> Self {
        Planner {
            cache: PlanCache::new(cfg.cache_shards, cfg.cache_capacity),
            flights: SingleFlight::new(),
            executor: Executor::new(cfg.workers, cfg.queue_capacity),
            breaker: CircuitBreaker::new(
                cfg.cache_shards,
                BreakerConfig {
                    failure_threshold: cfg.breaker_threshold,
                    open_ms: cfg.breaker_open_ms,
                },
            ),
            metrics: Arc::new(ServiceMetrics::new()),
            recorder: (cfg.recorder_capacity > 0).then(|| {
                Arc::new(FlightRecorder::new(
                    cfg.recorder_capacity,
                    cfg.recorder_stripes,
                ))
            }),
            cfg,
        }
    }

    /// Record one flight-recorder event (no-op when the recorder is
    /// disabled).
    fn rec(&self, ctx: &TraceContext, kind: &'static str, detail: Vec<(&str, Value)>) {
        if let Some(r) = &self.recorder {
            r.record_kv(Some(ctx), kind, detail);
        }
    }

    /// Plan `req` under a freshly minted root trace, with no deadline.
    /// See [`Planner::plan_opts`].
    pub fn plan(&self, req: &PlanRequest) -> Result<PlanReply, PlanError> {
        self.plan_opts(req, TraceContext::root(), None)
    }

    /// Plan `req` under `ctx`, with no deadline. See
    /// [`Planner::plan_opts`].
    pub fn plan_traced(
        &self,
        req: &PlanRequest,
        ctx: TraceContext,
    ) -> Result<PlanReply, PlanError> {
        self.plan_opts(req, ctx, None)
    }

    /// Plan `req` under `ctx` with an optional end-to-end `deadline`
    /// budget, going through cache → single-flight → breaker →
    /// admission → portfolio search. Never blocks on a full queue:
    /// overload is a structured [`PlanError::Overloaded`]. The deadline
    /// is operational state, not request content — it does not affect
    /// the cache key, and two requests differing only in deadline still
    /// coalesce.
    pub fn plan_opts(
        &self,
        req: &PlanRequest,
        ctx: TraceContext,
        deadline: Option<Duration>,
    ) -> Result<PlanReply, PlanError> {
        let t0 = self.metrics.now_ns();
        let deadline_at = deadline.map(|d| Instant::now() + d);
        let budget_ms = deadline.map_or(0, |d| d.as_millis() as u64);
        let canon = req.canonical_json();
        let key = crate::request::fnv1a64(canon.as_bytes());
        let label = req.label();

        if self.cfg.cache_enabled {
            if let Some(plan) = self.cache.get(key, &canon) {
                // One event on the serving fast path: `cache.hit`
                // doubles as the arrival record for cache-served
                // requests (same trace, timestamp, and key a separate
                // received event would carry).
                self.rec(
                    &ctx,
                    "cache.hit",
                    vec![
                        ("label", Value::Str(label.clone())),
                        ("key", Value::Str(id_hex(key))),
                    ],
                );
                self.record(&label, RequestSource::Cache, &ctx, 0, t0, 0, Vec::new());
                return Ok(PlanReply {
                    plan,
                    source: RequestSource::Cache,
                    key,
                    trace: ctx,
                    degraded: false,
                });
            }
        }

        self.rec(
            &ctx,
            "request.received",
            vec![
                ("label", Value::Str(label.clone())),
                ("key", Value::Str(id_hex(key))),
            ],
        );
        if self.cfg.cache_enabled {
            self.rec(&ctx, "cache.miss", vec![("key", Value::Str(id_hex(key)))]);
        }

        if self.cfg.coalesce_enabled {
            loop {
                match self.flights.enter(&canon) {
                    Entry::Follower(flight) => {
                        let Some(out) = flight.wait_until(deadline_at) else {
                            // Our own deadline expired while the leader was
                            // still searching. Give up quietly; the leader
                            // keeps working for the rest of the coalition.
                            self.metrics.on_deadline_exceeded();
                            self.rec(
                                &ctx,
                                "deadline.exceeded",
                                vec![
                                    ("key", Value::Str(id_hex(key))),
                                    ("budget_ms", Value::UInt(budget_ms)),
                                    ("stage", Value::Str("coalesced".into())),
                                ],
                            );
                            self.record(&label, RequestSource::Failed, &ctx, 0, t0, 0, Vec::new());
                            return Err(PlanError::DeadlineExceeded { budget_ms });
                        };
                        self.rec(
                            &ctx,
                            "coalesce.follow",
                            vec![
                                ("key", Value::Str(id_hex(key))),
                                ("leader_trace_id", Value::Str(id_hex(out.leader_trace_id))),
                            ],
                        );
                        match out.result {
                            Ok((plan, _, degraded)) => {
                                if degraded && deadline_at.is_none() {
                                    // This caller asked for the full-budget
                                    // answer; the leader's own deadline cut
                                    // the search short. Inheriting the
                                    // incumbent would silently hand a
                                    // partial-budget plan to a request that
                                    // never opted into one — go around
                                    // again instead (cache first: a
                                    // full-budget leader may have finished
                                    // while we waited; otherwise re-enter
                                    // the flight, leading it ourselves if
                                    // nobody else is searching).
                                    self.rec(
                                        &ctx,
                                        "coalesce.degraded_retry",
                                        vec![
                                            ("key", Value::Str(id_hex(key))),
                                            (
                                                "leader_trace_id",
                                                Value::Str(id_hex(out.leader_trace_id)),
                                            ),
                                        ],
                                    );
                                    if self.cfg.cache_enabled {
                                        if let Some(plan) = self.cache.get(key, &canon) {
                                            self.record(
                                                &label,
                                                RequestSource::Cache,
                                                &ctx,
                                                out.leader_trace_id,
                                                t0,
                                                0,
                                                Vec::new(),
                                            );
                                            return Ok(PlanReply {
                                                plan,
                                                source: RequestSource::Cache,
                                                key,
                                                trace: ctx,
                                                degraded: false,
                                            });
                                        }
                                    }
                                    continue;
                                }
                                if degraded {
                                    self.metrics.on_degraded();
                                }
                                self.record(
                                    &label,
                                    RequestSource::Coalesced,
                                    &ctx,
                                    out.leader_trace_id,
                                    t0,
                                    0,
                                    Vec::new(),
                                );
                                return Ok(PlanReply {
                                    plan,
                                    source: RequestSource::Coalesced,
                                    key,
                                    trace: ctx,
                                    degraded,
                                });
                            }
                            Err(e) => {
                                let source = match e {
                                    PlanError::Overloaded { .. }
                                    | PlanError::CircuitOpen { .. } => RequestSource::Shed,
                                    PlanError::Search(_) | PlanError::DeadlineExceeded { .. } => {
                                        RequestSource::Failed
                                    }
                                };
                                self.record(
                                    &label,
                                    source,
                                    &ctx,
                                    out.leader_trace_id,
                                    t0,
                                    0,
                                    Vec::new(),
                                );
                                return Err(e);
                            }
                        }
                    }
                    Entry::Leader(flight) => {
                        return self.lead(
                            req,
                            key,
                            &canon,
                            Some(flight),
                            t0,
                            &label,
                            ctx,
                            deadline_at,
                            budget_ms,
                        )
                    }
                }
            }
        } else {
            self.lead(
                req,
                key,
                &canon,
                None,
                t0,
                &label,
                ctx,
                deadline_at,
                budget_ms,
            )
        }
    }

    /// Leader path: breaker, admit, search, cache, publish.
    #[allow(clippy::too_many_arguments)]
    fn lead(
        &self,
        req: &PlanRequest,
        key: u64,
        canon: &str,
        flight: Option<Arc<crate::singleflight::Flight<FlightOutput>>>,
        t0: u64,
        label: &str,
        ctx: TraceContext,
        deadline_at: Option<Instant>,
        budget_ms: u64,
    ) -> Result<PlanReply, PlanError> {
        if let Err(retry_after_ms) = self.breaker.admit(key, self.metrics.now_ns()) {
            let err = PlanError::CircuitOpen { retry_after_ms };
            self.rec(
                &ctx,
                "breaker.fastfail",
                vec![
                    ("key", Value::Str(id_hex(key))),
                    ("retry_after_ms", Value::UInt(retry_after_ms)),
                ],
            );
            // Publish the fast-fail to followers FIRST: they must
            // never hang on a flight whose leader was never admitted.
            if let Some(f) = &flight {
                self.flights.complete(
                    canon,
                    f,
                    FlightOutput {
                        result: Err(err.clone()),
                        leader_trace_id: ctx.trace_id,
                    },
                );
            }
            self.record(label, RequestSource::Shed, &ctx, 0, t0, 0, Vec::new());
            return Err(err);
        }

        let (tx, rx) = mpsc::channel::<SearchReport>();
        let job_req = req.clone();
        let job_metrics = Arc::clone(&self.metrics);
        let job = move || {
            let started_ns = job_metrics.now_ns();
            // Expired while queued: don't burn a worker on a search
            // whose client already gave up. No incumbent exists yet,
            // so this is a true DeadlineExceeded, not a degraded plan.
            if deadline_at.is_some_and(|d| Instant::now() >= d) {
                let _ = tx.send(SearchReport {
                    result: Err(PlanError::DeadlineExceeded { budget_ms }),
                    started_ns,
                    search_ns: 0,
                });
                return;
            }
            job_metrics.on_search_started();
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_search(&job_req, deadline_at, budget_ms)
            }))
            .unwrap_or_else(|_| Err(PlanError::Search("search worker panicked".into())));
            let search_ns = job_metrics.now_ns().saturating_sub(started_ns);
            let _ = tx.send(SearchReport {
                result,
                started_ns,
                search_ns,
            });
        };

        if self.executor.try_submit(job).is_err() {
            // The breaker admitted us but no search will run: if we
            // held the half-open probe slot, give it back so the next
            // request can probe instead of fast-failing forever.
            self.breaker.on_abandoned(key);
            let err = PlanError::Overloaded {
                retry_after_ms: self.cfg.retry_after_ms,
            };
            self.rec(
                &ctx,
                "request.shed",
                vec![
                    ("key", Value::Str(id_hex(key))),
                    (
                        "queue_depth",
                        Value::UInt(self.executor.queue_depth() as u64),
                    ),
                    ("retry_after_ms", Value::UInt(self.cfg.retry_after_ms)),
                ],
            );
            // Publish the shed to followers FIRST: they must never
            // hang on a flight whose leader was never admitted.
            if let Some(f) = &flight {
                self.flights.complete(
                    canon,
                    f,
                    FlightOutput {
                        result: Err(err.clone()),
                        leader_trace_id: ctx.trace_id,
                    },
                );
            }
            self.record(label, RequestSource::Shed, &ctx, 0, t0, 0, Vec::new());
            return Err(err);
        }

        let report = rx.recv().expect("worker always replies");
        let flight_result = match &report.result {
            Ok((plan, aux)) => Ok((plan.clone(), report.search_ns, aux.degraded)),
            Err(e) => Err(e.clone()),
        };
        if let Ok((plan, aux)) = &report.result {
            self.metrics.on_delta(&aux.delta);
            // Degraded plans are partial-budget incumbents; caching
            // them would poison the key for future full-budget
            // requests.
            if self.cfg.cache_enabled && !aux.degraded {
                self.cache.insert(key, canon, plan.clone());
            }
        }
        if let Some(f) = &flight {
            self.flights.complete(
                canon,
                f,
                FlightOutput {
                    result: flight_result,
                    leader_trace_id: ctx.trace_id,
                },
            );
        }

        // Breaker health: only genuine search outcomes count. A
        // deadline expiry says nothing about whether the shard's
        // requests can succeed.
        match &report.result {
            Ok(_) => {
                let closes_before = self.breaker.closes();
                self.breaker.on_success(key);
                if self.breaker.closes() > closes_before {
                    self.rec(
                        &ctx,
                        "breaker.close",
                        vec![("key", Value::Str(id_hex(key)))],
                    );
                }
            }
            Err(PlanError::Search(_)) => {
                let trips_before = self.breaker.trips();
                self.breaker.on_failure(key, self.metrics.now_ns());
                if self.breaker.trips() > trips_before {
                    self.rec(
                        &ctx,
                        "breaker.open",
                        vec![
                            ("key", Value::Str(id_hex(key))),
                            ("open_ms", Value::UInt(self.cfg.breaker_open_ms)),
                        ],
                    );
                }
            }
            Err(_) => {
                // Neither a success nor a search failure (deadline
                // expired before or during the search): no verdict on
                // shard health, but the probe slot — if this request
                // held it — must be released.
                self.breaker.on_abandoned(key);
            }
        }

        match report.result {
            Ok((plan, aux)) => {
                if aux.cancelled {
                    self.rec(
                        &ctx,
                        "search.cancelled",
                        vec![("key", Value::Str(id_hex(key)))],
                    );
                }
                if aux.degraded {
                    self.metrics.on_degraded();
                    self.rec(
                        &ctx,
                        "deadline.degraded",
                        vec![
                            ("key", Value::Str(id_hex(key))),
                            ("budget_ms", Value::UInt(budget_ms)),
                            ("total_evals", Value::UInt(plan.total_evals as u64)),
                        ],
                    );
                }
                self.rec(
                    &ctx,
                    "search.done",
                    vec![
                        ("key", Value::Str(id_hex(key))),
                        ("winner", Value::Str(plan.winner.name().to_string())),
                        ("total_evals", Value::UInt(plan.total_evals as u64)),
                    ],
                );
                // Strategy offsets are relative to the portfolio
                // launch; rebase them onto the metrics clock.
                let strategies = aux
                    .strategies
                    .into_iter()
                    .map(|s| StrategySpan {
                        name: s.name,
                        start_ns: report.started_ns + s.start_ns,
                        dur_ns: s.dur_ns,
                    })
                    .collect();
                let span = RequestSpan {
                    label: label.to_string(),
                    source: RequestSource::Fresh,
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_span_id: ctx.parent_span_id,
                    link_trace_id: 0,
                    start_ns: t0,
                    queued_ns: report.started_ns.saturating_sub(t0),
                    search_ns: report.search_ns,
                    total_ns: self.metrics.now_ns().saturating_sub(t0),
                    strategies,
                };
                self.metrics.record_request(span);
                Ok(PlanReply {
                    plan,
                    source: RequestSource::Fresh,
                    key,
                    trace: ctx,
                    degraded: aux.degraded,
                })
            }
            Err(e) => {
                if matches!(e, PlanError::DeadlineExceeded { .. }) {
                    self.metrics.on_deadline_exceeded();
                    self.rec(
                        &ctx,
                        "deadline.exceeded",
                        vec![
                            ("key", Value::Str(id_hex(key))),
                            ("budget_ms", Value::UInt(budget_ms)),
                            ("stage", Value::Str("search".into())),
                        ],
                    );
                } else {
                    self.rec(
                        &ctx,
                        "search.fail",
                        vec![
                            ("key", Value::Str(id_hex(key))),
                            ("error", Value::Str(e.to_string())),
                        ],
                    );
                }
                self.record(
                    label,
                    RequestSource::Failed,
                    &ctx,
                    0,
                    t0,
                    report.search_ns,
                    Vec::new(),
                );
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        label: &str,
        source: RequestSource,
        ctx: &TraceContext,
        link_trace_id: u64,
        t0: u64,
        search_ns: u64,
        strategies: Vec<StrategySpan>,
    ) {
        let total_ns = self.metrics.now_ns().saturating_sub(t0);
        self.metrics.record_request(RequestSpan {
            label: label.to_string(),
            source,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            link_trace_id,
            start_ns: t0,
            queued_ns: total_ns.saturating_sub(search_ns),
            search_ns,
            total_ns,
            strategies,
        });
    }

    /// Drop every cached plan; returns how many were invalidated.
    pub fn invalidate_cache(&self) -> usize {
        let n = self.cache.invalidate_all();
        self.metrics.on_cache_invalidations(n as u64);
        if let Some(r) = &self.recorder {
            r.record_kv(
                None,
                "cache.invalidate",
                vec![("entries", Value::UInt(n as u64))],
            );
        }
        n
    }

    /// Snapshot the plan cache to `path` (`mheta-plancache/v1`,
    /// atomic tmp + rename). Returns how many entries were saved.
    pub fn save_snapshot(&self, path: &Path) -> std::io::Result<usize> {
        let n = crate::snapshot::save(&self.cache, path)?;
        if let Some(r) = &self.recorder {
            r.record_kv(
                None,
                "snapshot.save",
                vec![
                    ("entries", Value::UInt(n as u64)),
                    ("path", Value::Str(path.display().to_string())),
                ],
            );
        }
        Ok(n)
    }

    /// Warm-start the plan cache from the snapshot at `path`. Returns
    /// how many entries were restored; any rejection (missing file,
    /// truncation, checksum mismatch, schema mismatch) comes back as a
    /// value — the caller cold-starts, never crashes.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, crate::snapshot::SnapshotError> {
        let entries = crate::snapshot::load(path)?;
        let n = crate::snapshot::restore(&self.cache, entries);
        if let Some(r) = &self.recorder {
            r.record_kv(
                None,
                "snapshot.load",
                vec![
                    ("entries", Value::UInt(n as u64)),
                    ("path", Value::Str(path.display().to_string())),
                ],
            );
        }
        Ok(n)
    }

    /// The service metrics registry (counters, stage histograms, and
    /// the Perfetto request track).
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The plan cache (counters and explicit invalidation).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The circuit breaker (state inspection and counters).
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The always-on flight recorder (`None` only when configured off).
    #[must_use]
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Jobs currently waiting in the executor queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.executor.queue_depth()
    }

    /// The flight-recorder dump document (`mheta-flight/v1`); an empty
    /// zero-capacity dump when the recorder is disabled.
    #[must_use]
    pub fn flight_dump(&self) -> Value {
        match &self.recorder {
            Some(r) => r.dump_value(),
            None => Value::object(vec![
                ("schema", Value::Str("mheta-flight/v1".into())),
                ("capacity", Value::UInt(0)),
                ("written", Value::UInt(0)),
                ("dropped", Value::UInt(0)),
                ("retained", Value::UInt(0)),
                ("events", Value::Array(Vec::new())),
            ]),
        }
    }

    /// The full Prometheus text-format exposition for this planner:
    /// the service registry (request/stage series) plus cache,
    /// executor, breaker, and flight-recorder series. See DESIGN.md
    /// §12 for the naming scheme.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut out = mheta_obs::service_text(&self.metrics);
        let mut p = mheta_obs::PromText::new();
        p.counter(
            "mheta_serve_cache_hits_total",
            "Plan-cache hits.",
            &[],
            self.cache.hits(),
        );
        p.counter(
            "mheta_serve_cache_misses_total",
            "Plan-cache misses.",
            &[],
            self.cache.misses(),
        );
        p.counter(
            "mheta_serve_cache_evictions_total",
            "Plan-cache capacity evictions.",
            &[],
            self.cache.evictions(),
        );
        p.gauge(
            "mheta_serve_cache_entries",
            "Plans currently cached.",
            &[],
            self.cache.len() as f64,
        );
        p.counter(
            "mheta_serve_executor_executed_total",
            "Search jobs fully executed.",
            &[],
            self.executor.executed(),
        );
        p.counter(
            "mheta_serve_executor_rejected_total",
            "Search jobs shed at admission.",
            &[],
            self.executor.rejected(),
        );
        p.gauge(
            "mheta_serve_executor_queue_depth",
            "Jobs currently queued.",
            &[],
            self.executor.queue_depth() as f64,
        );
        p.counter(
            "mheta_serve_breaker_trips_total",
            "Circuit-breaker shard trips (closed to open).",
            &[],
            self.breaker.trips(),
        );
        p.counter(
            "mheta_serve_breaker_closes_total",
            "Circuit-breaker shard recoveries (back to closed).",
            &[],
            self.breaker.closes(),
        );
        p.counter(
            "mheta_serve_breaker_fast_fails_total",
            "Requests shed fast by an open breaker shard.",
            &[],
            self.breaker.fast_fails(),
        );
        p.gauge(
            "mheta_serve_breaker_tripped_shards",
            "Breaker shards currently shedding (open window running) or mid-probe.",
            &[],
            self.breaker.tripped_shards(self.metrics.now_ns()) as f64,
        );
        if let Some(r) = &self.recorder {
            p.counter(
                "mheta_serve_flight_written_total",
                "Flight-recorder events written.",
                &[],
                r.written(),
            );
            p.counter(
                "mheta_serve_flight_dropped_total",
                "Flight-recorder events dropped from the ring.",
                &[],
                r.dropped(),
            );
            p.gauge(
                "mheta_serve_flight_retained",
                "Flight-recorder events currently retained.",
                &[],
                r.retained() as f64,
            );
        }
        out.push_str(&p.finish());
        out
    }

    /// Full service statistics: request counters and stage latencies,
    /// cache counters, executor admission tallies, breaker state, and
    /// flight-recorder occupancy.
    #[must_use]
    pub fn stats(&self) -> Value {
        let recorder = match &self.recorder {
            Some(r) => Value::object(vec![
                ("capacity", Value::UInt(r.capacity() as u64)),
                ("written", Value::UInt(r.written())),
                ("dropped", Value::UInt(r.dropped())),
                ("retained", Value::UInt(r.retained())),
            ]),
            None => Value::Null,
        };
        Value::object(vec![
            ("service", self.metrics.snapshot()),
            ("cache", self.cache.stats()),
            (
                "executor",
                Value::object(vec![
                    ("executed", Value::UInt(self.executor.executed())),
                    ("rejected", Value::UInt(self.executor.rejected())),
                    (
                        "queue_depth",
                        Value::UInt(self.executor.queue_depth() as u64),
                    ),
                ]),
            ),
            ("breaker", self.breaker.stats(self.metrics.now_ns())),
            ("recorder", recorder),
        ])
    }
}

/// Build the MHETA model for the request and run the portfolio search,
/// with the request deadline (if any) as a cooperative cancellation
/// criterion.
fn run_search(
    req: &PlanRequest,
    deadline: Option<Instant>,
    budget_ms: u64,
) -> Result<(Plan, SearchAux), PlanError> {
    let model = build_model(&req.bench, &req.spec, req.prefetch)
        .map_err(|e| PlanError::Search(e.to_string()))?;
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let mut cfg = req.search.to_portfolio();
    cfg.deadline = deadline;
    let out = portfolio_search(&path, &model, cfg);
    if !out.best.score_ns.is_finite() {
        // The deadline fired before ANY candidate finished evaluating:
        // nothing to degrade to.
        if out.deadline_hit {
            return Err(PlanError::DeadlineExceeded { budget_ms });
        }
        return Err(PlanError::Search(
            "no candidate evaluated to a finite score".into(),
        ));
    }
    let strategies = out
        .runs
        .iter()
        .map(|r| StrategySpan {
            name: r.strategy.name(),
            start_ns: r.started_ns,
            dur_ns: r.elapsed_ns,
        })
        .collect();
    Ok((
        Plan {
            rows: out.best.best.rows().to_vec(),
            predicted_ns: out.best.score_ns,
            winner: out.winner,
            total_evals: out.total_evals,
        },
        SearchAux {
            strategies,
            cancelled: out.cancelled,
            degraded: out.deadline_hit,
            delta: out.delta,
        },
    ))
}
