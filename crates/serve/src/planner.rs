//! The in-process planning front end.
//!
//! [`Planner::plan`] takes a request through the full lifecycle:
//!
//! ```text
//! request ── cache probe ──hit──────────────────────────▶ reply (cache)
//!               │ miss
//!               ▼
//!          single-flight ──follower── wait ─────────────▶ reply (coalesced)
//!               │ leader
//!               ▼
//!          executor.try_submit ──queue full── shed ─────▶ Err(Overloaded)
//!               │ admitted
//!               ▼
//!          portfolio search ── cache insert ── publish ─▶ reply (fresh)
//! ```
//!
//! Every path publishes to the flight before returning, so followers
//! can never hang — a shed or failed leader sheds/fails its followers
//! too. Every path records a [`RequestSpan`] so the request track and
//! stage histograms cover shed and failed requests as well.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

use mheta_apps::{anchor_inputs, build_model};
use mheta_dist::{portfolio_search, SpectrumPath, Strategy};
use mheta_obs::json::Value;
use mheta_obs::{RequestSource, RequestSpan, ServiceMetrics};

use crate::cache::PlanCache;
use crate::executor::Executor;
use crate::request::PlanRequest;
use crate::singleflight::{Entry, SingleFlight};

/// A finished distribution plan: the service's product.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The best `GEN_BLOCK` layout found (rows per node).
    pub rows: Vec<usize>,
    /// Its predicted iteration time, ns.
    pub predicted_ns: f64,
    /// Which portfolio strategy produced it.
    pub winner: Strategy,
    /// Combined evaluator calls the portfolio spent.
    pub total_evals: usize,
}

/// Why a request did not produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Admission control shed the request: the executor queue was
    /// full. Retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Model construction or the search itself failed.
    Search(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            PlanError::Search(msg) => write!(f, "search failed: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A successful reply: the plan plus provenance.
#[derive(Debug, Clone)]
pub struct PlanReply {
    /// The plan.
    pub plan: Plan,
    /// How it was produced (`Fresh`, `Cache`, or `Coalesced`).
    pub source: RequestSource,
    /// The request's canonical content hash (the cache key).
    pub key: u64,
}

/// Planner tuning.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Search worker threads.
    pub workers: usize,
    /// Bounded executor queue depth; 0 sheds every admission (useful
    /// for deterministic overload tests).
    pub queue_capacity: usize,
    /// Plan-cache lock stripes.
    pub cache_shards: usize,
    /// Plan-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Serve repeat requests from the cache.
    pub cache_enabled: bool,
    /// Coalesce concurrent identical requests onto one search.
    pub coalesce_enabled: bool,
    /// Backoff suggested to shed clients, milliseconds.
    pub retry_after_ms: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity: 256,
            cache_enabled: true,
            coalesce_enabled: true,
            retry_after_ms: 50,
        }
    }
}

/// What a leader publishes to its flight: the plan and the search-stage
/// duration, or the error every coalesced follower inherits.
type FlightResult = Result<(Plan, u64), PlanError>;

/// The resident planning service (in-process front end).
pub struct Planner {
    cfg: PlannerConfig,
    cache: PlanCache,
    flights: SingleFlight<FlightResult>,
    executor: Executor,
    metrics: Arc<ServiceMetrics>,
}

impl Planner {
    /// Build a planner (spawns the worker pool immediately).
    #[must_use]
    pub fn new(cfg: PlannerConfig) -> Self {
        Planner {
            cache: PlanCache::new(cfg.cache_shards, cfg.cache_capacity),
            flights: SingleFlight::new(),
            executor: Executor::new(cfg.workers, cfg.queue_capacity),
            metrics: Arc::new(ServiceMetrics::new()),
            cfg,
        }
    }

    /// Plan `req`, going through cache → single-flight → admission →
    /// portfolio search. Never blocks on a full queue: overload is a
    /// structured [`PlanError::Overloaded`].
    pub fn plan(&self, req: &PlanRequest) -> Result<PlanReply, PlanError> {
        let t0 = self.metrics.now_ns();
        let canon = req.canonical_json();
        let key = crate::request::fnv1a64(canon.as_bytes());
        let label = req.label();

        if self.cfg.cache_enabled {
            if let Some(plan) = self.cache.get(key, &canon) {
                self.record(&label, RequestSource::Cache, t0, 0);
                return Ok(PlanReply {
                    plan,
                    source: RequestSource::Cache,
                    key,
                });
            }
        }

        if self.cfg.coalesce_enabled {
            match self.flights.enter(&canon) {
                Entry::Follower(flight) => {
                    let result = flight.wait();
                    match result {
                        Ok((plan, _)) => {
                            self.record(&label, RequestSource::Coalesced, t0, 0);
                            Ok(PlanReply {
                                plan,
                                source: RequestSource::Coalesced,
                                key,
                            })
                        }
                        Err(e) => {
                            let source = match e {
                                PlanError::Overloaded { .. } => RequestSource::Shed,
                                PlanError::Search(_) => RequestSource::Failed,
                            };
                            self.record(&label, source, t0, 0);
                            Err(e)
                        }
                    }
                }
                Entry::Leader(flight) => self.lead(req, key, &canon, Some(flight), t0, &label),
            }
        } else {
            self.lead(req, key, &canon, None, t0, &label)
        }
    }

    /// Leader path: admit, search, cache, publish.
    fn lead(
        &self,
        req: &PlanRequest,
        key: u64,
        canon: &str,
        flight: Option<Arc<crate::singleflight::Flight<FlightResult>>>,
        t0: u64,
        label: &str,
    ) -> Result<PlanReply, PlanError> {
        let (tx, rx) = mpsc::channel::<(Result<Plan, PlanError>, u64, u64)>();
        let job_req = req.clone();
        let job_metrics = Arc::clone(&self.metrics);
        let job = move || {
            let started = job_metrics.now_ns();
            job_metrics.on_search_started();
            let result = catch_unwind(AssertUnwindSafe(|| run_search(&job_req)))
                .unwrap_or_else(|_| Err(PlanError::Search("search worker panicked".into())));
            let search_ns = job_metrics.now_ns().saturating_sub(started);
            let _ = tx.send((result, started, search_ns));
        };

        if self.executor.try_submit(job).is_err() {
            let err = PlanError::Overloaded {
                retry_after_ms: self.cfg.retry_after_ms,
            };
            // Publish the shed to followers FIRST: they must never
            // hang on a flight whose leader was never admitted.
            if let Some(f) = &flight {
                self.flights.complete(canon, f, Err(err.clone()));
            }
            self.record(label, RequestSource::Shed, t0, 0);
            return Err(err);
        }

        let (result, started, search_ns) = rx.recv().expect("worker always replies");
        let flight_result = result.clone().map(|p| (p, search_ns));
        if let Ok(plan) = &result {
            if self.cfg.cache_enabled {
                self.cache.insert(key, canon, plan.clone());
            }
        }
        if let Some(f) = &flight {
            self.flights.complete(canon, f, flight_result);
        }

        match result {
            Ok(plan) => {
                let span = RequestSpan {
                    label: label.to_string(),
                    source: RequestSource::Fresh,
                    start_ns: t0,
                    queued_ns: started.saturating_sub(t0),
                    search_ns,
                    total_ns: self.metrics.now_ns().saturating_sub(t0),
                };
                self.metrics.record_request(span);
                Ok(PlanReply {
                    plan,
                    source: RequestSource::Fresh,
                    key,
                })
            }
            Err(e) => {
                self.record(label, RequestSource::Failed, t0, search_ns);
                Err(e)
            }
        }
    }

    fn record(&self, label: &str, source: RequestSource, t0: u64, search_ns: u64) {
        let total_ns = self.metrics.now_ns().saturating_sub(t0);
        self.metrics.record_request(RequestSpan {
            label: label.to_string(),
            source,
            start_ns: t0,
            queued_ns: total_ns.saturating_sub(search_ns),
            search_ns,
            total_ns,
        });
    }

    /// Drop every cached plan; returns how many were invalidated.
    pub fn invalidate_cache(&self) -> usize {
        let n = self.cache.invalidate_all();
        self.metrics.on_cache_invalidations(n as u64);
        n
    }

    /// The service metrics registry (counters, stage histograms, and
    /// the Perfetto request track).
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The plan cache (counters and explicit invalidation).
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Full service statistics: request counters and stage latencies,
    /// cache counters, and executor admission tallies.
    #[must_use]
    pub fn stats(&self) -> Value {
        Value::object(vec![
            ("service", self.metrics.snapshot()),
            ("cache", self.cache.stats()),
            (
                "executor",
                Value::object(vec![
                    ("executed", Value::UInt(self.executor.executed())),
                    ("rejected", Value::UInt(self.executor.rejected())),
                ]),
            ),
        ])
    }
}

/// Build the MHETA model for the request and run the portfolio search.
fn run_search(req: &PlanRequest) -> Result<Plan, PlanError> {
    let model = build_model(&req.bench, &req.spec, req.prefetch)
        .map_err(|e| PlanError::Search(e.to_string()))?;
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let out = portfolio_search(&path, &model, req.search.to_portfolio());
    if !out.best.score_ns.is_finite() {
        return Err(PlanError::Search(
            "no candidate evaluated to a finite score".into(),
        ));
    }
    Ok(Plan {
        rows: out.best.best.rows().to_vec(),
        predicted_ns: out.best.score_ns,
        winner: out.winner,
        total_evals: out.total_evals,
    })
}
