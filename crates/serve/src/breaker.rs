//! Per-shard circuit breaker over the search path.
//!
//! Consecutive search failures against one cache-key shard mean that
//! shard's requests are *doomed* — most often a malformed cluster spec
//! or program variant that fails model construction every time.
//! Queueing more of them burns worker threads and queue slots that
//! healthy requests need, so the breaker sheds them fast with a
//! structured error instead.
//!
//! The state machine is the classic three-state breaker, kept per
//! shard (shard selection matches [`crate::cache::PlanCache`]: the
//! key's high bits):
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                       │ open_ms elapsed
//!     │ probe succeeds                        ▼
//!     └────────────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! * **Closed** — requests flow; failures are counted, any success
//!   resets the count.
//! * **Open** — every admission is denied immediately with the time
//!   remaining until the next probe as `retry_after_ms`.
//! * **HalfOpen** — exactly one probe request is admitted; concurrent
//!   requests keep shedding until the probe reports. Success closes
//!   the breaker, failure re-opens it for another full window. A probe
//!   that ends with *no* search verdict — shed on a full queue, or its
//!   deadline expired first — must call [`CircuitBreaker::on_abandoned`]
//!   to release the probe slot, or the shard would wait forever for a
//!   report that is never coming and fast-fail every future request.
//!
//! Time is injected by the caller (nanoseconds on the planner's
//! metrics clock), so every transition is a pure function of
//! `(state, event, now_ns)` — which is what the state-machine
//! proptests exercise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mheta_obs::json::Value;

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (per shard) that trip the breaker open.
    /// 0 disables the breaker entirely: every admission is allowed.
    pub failure_threshold: u32,
    /// How long a tripped shard stays open before admitting a probe,
    /// milliseconds. Also the `retry_after_ms` hint while half-open.
    pub open_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 1000,
        }
    }
}

/// The externally visible state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests shed fast.
    Open,
    /// Probing: one request in flight decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for stats and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
enum Shard {
    Closed { consecutive_failures: u32 },
    Open { until_ns: u64 },
    HalfOpen { probe_in_flight: bool },
}

/// Sharded three-state circuit breaker. All methods take `now_ns`
/// explicitly (the planner passes its metrics clock), which keeps the
/// state machine deterministic and directly testable.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    shards: Vec<Mutex<Shard>>,
    trips: AtomicU64,
    closes: AtomicU64,
    fast_fails: AtomicU64,
    probes: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker striped across `shards` (clamped to at least 1),
    /// matching the plan cache's shard selection.
    #[must_use]
    pub fn new(shards: usize, cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(Shard::Closed {
                        consecutive_failures: 0,
                    })
                })
                .collect(),
            trips: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            fast_fails: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Same selection as the plan cache: FNV-1a's high bits.
        let idx = (key >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    fn open_ns(&self) -> u64 {
        self.cfg.open_ms.saturating_mul(1_000_000)
    }

    /// Ask to run a search for `key` at `now_ns`. `Ok(())` admits
    /// (closed, or the half-open probe); `Err(retry_after_ms)` denies
    /// with the backoff the client should honor.
    pub fn admit(&self, key: u64, now_ns: u64) -> Result<(), u64> {
        if self.cfg.failure_threshold == 0 {
            return Ok(());
        }
        let mut shard = self.shard(key).lock().expect("breaker shard poisoned");
        match *shard {
            Shard::Closed { .. } => Ok(()),
            Shard::Open { until_ns } if now_ns < until_ns => {
                self.fast_fails.fetch_add(1, Ordering::Relaxed);
                Err(((until_ns - now_ns).div_ceil(1_000_000)).max(1))
            }
            Shard::Open { .. } => {
                // The window elapsed: this caller becomes the probe.
                *shard = Shard::HalfOpen {
                    probe_in_flight: true,
                };
                self.probes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Shard::HalfOpen {
                probe_in_flight: false,
            } => {
                *shard = Shard::HalfOpen {
                    probe_in_flight: true,
                };
                self.probes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Shard::HalfOpen {
                probe_in_flight: true,
            } => {
                self.fast_fails.fetch_add(1, Ordering::Relaxed);
                Err(self.cfg.open_ms.max(1))
            }
        }
    }

    /// Report an admitted search's success. Closes the shard (from any
    /// state) and resets its failure count.
    pub fn on_success(&self, key: u64) {
        if self.cfg.failure_threshold == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("breaker shard poisoned");
        if !matches!(
            *shard,
            Shard::Closed {
                consecutive_failures: 0
            }
        ) {
            if matches!(*shard, Shard::Open { .. } | Shard::HalfOpen { .. }) {
                self.closes.fetch_add(1, Ordering::Relaxed);
            }
            *shard = Shard::Closed {
                consecutive_failures: 0,
            };
        }
    }

    /// Report an admitted search's failure at `now_ns`. Counts toward
    /// the trip threshold when closed; re-opens immediately when the
    /// half-open probe fails; extends the window when already open
    /// (a straggler admitted before the trip).
    pub fn on_failure(&self, key: u64, now_ns: u64) {
        if self.cfg.failure_threshold == 0 {
            return;
        }
        let until_ns = now_ns.saturating_add(self.open_ns());
        let mut shard = self.shard(key).lock().expect("breaker shard poisoned");
        match *shard {
            Shard::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.cfg.failure_threshold {
                    *shard = Shard::Open { until_ns };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                } else {
                    *shard = Shard::Closed {
                        consecutive_failures: n,
                    };
                }
            }
            Shard::HalfOpen { .. } => {
                *shard = Shard::Open { until_ns };
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            Shard::Open { until_ns: old } => {
                *shard = Shard::Open {
                    until_ns: old.max(until_ns),
                };
            }
        }
    }

    /// Report that an admitted request ended without a search verdict:
    /// it was shed on a full executor queue, or its deadline expired
    /// before the search reported. Says nothing about the shard's
    /// health, but if the request held the half-open probe slot it
    /// must be released so the next request can probe — otherwise the
    /// shard stays `HalfOpen` with a phantom probe forever.
    pub fn on_abandoned(&self, key: u64) {
        if self.cfg.failure_threshold == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("breaker shard poisoned");
        if matches!(
            *shard,
            Shard::HalfOpen {
                probe_in_flight: true
            }
        ) {
            *shard = Shard::HalfOpen {
                probe_in_flight: false,
            };
        }
    }

    /// The state of `key`'s shard as of `now_ns` (an open window past
    /// its expiry reports `HalfOpen`, matching what the next `admit`
    /// would do).
    #[must_use]
    pub fn state(&self, key: u64, now_ns: u64) -> BreakerState {
        let shard = self.shard(key).lock().expect("breaker shard poisoned");
        match *shard {
            Shard::Closed { .. } => BreakerState::Closed,
            Shard::Open { until_ns } if now_ns < until_ns => BreakerState::Open,
            Shard::Open { .. } | Shard::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Shards actively tripped at `now_ns`: an open window still
    /// running, or a half-open probe in flight. An expired-but-idle
    /// window does not count — the next request there is admitted as
    /// the probe, so the shard is no longer shedding anything.
    #[must_use]
    pub fn tripped_shards(&self, now_ns: u64) -> usize {
        self.shards
            .iter()
            .filter(|s| match *s.lock().expect("breaker shard poisoned") {
                Shard::Closed { .. } => false,
                Shard::Open { until_ns } => now_ns < until_ns,
                Shard::HalfOpen { probe_in_flight } => probe_in_flight,
            })
            .count()
    }

    /// Closed→open transitions so far.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Open/half-open→closed transitions so far.
    #[must_use]
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }

    /// Admissions denied (shed fast) so far.
    #[must_use]
    pub fn fast_fails(&self) -> u64 {
        self.fast_fails.load(Ordering::Relaxed)
    }

    /// Half-open probes admitted so far.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Counters and occupancy as a JSON value.
    #[must_use]
    pub fn stats(&self, now_ns: u64) -> Value {
        Value::object(vec![
            (
                "failure_threshold",
                Value::UInt(u64::from(self.cfg.failure_threshold)),
            ),
            ("open_ms", Value::UInt(self.cfg.open_ms)),
            ("shards", Value::UInt(self.shards.len() as u64)),
            (
                "tripped_shards",
                Value::UInt(self.tripped_shards(now_ns) as u64),
            ),
            ("trips", Value::UInt(self.trips())),
            ("closes", Value::UInt(self.closes())),
            ("fast_fails", Value::UInt(self.fast_fails())),
            ("probes", Value::UInt(self.probes())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            1,
            BreakerConfig {
                failure_threshold: 3,
                open_ms: 100,
            },
        )
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker();
        for i in 0..3 {
            assert_eq!(b.admit(0, i * MS), Ok(()));
            b.on_failure(0, i * MS);
        }
        assert_eq!(b.state(0, 3 * MS), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        let retry = b.admit(0, 3 * MS).unwrap_err();
        assert!((1..=100).contains(&retry), "retry_after {retry}ms");
        assert_eq!(b.fast_fails(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker();
        b.on_failure(0, 0);
        b.on_failure(0, MS);
        b.on_success(0);
        b.on_failure(0, 2 * MS);
        b.on_failure(0, 3 * MS);
        assert_eq!(b.state(0, 4 * MS), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = breaker();
        for i in 0..3 {
            b.on_failure(0, i);
        }
        let after = 101 * MS;
        assert_eq!(b.admit(0, after), Ok(()), "probe admitted");
        assert!(b.admit(0, after).is_err(), "second concurrent denied");
        assert_eq!(b.probes(), 1);
        b.on_success(0);
        assert_eq!(b.state(0, after), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_window() {
        let b = breaker();
        for i in 0..3 {
            b.on_failure(0, i);
        }
        let after = 150 * MS;
        assert_eq!(b.admit(0, after), Ok(()));
        b.on_failure(0, after);
        assert_eq!(b.state(0, after + 99 * MS), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn abandoned_probe_releases_the_slot() {
        let b = breaker();
        for i in 0..3 {
            b.on_failure(0, i);
        }
        let after = 101 * MS;
        assert_eq!(b.admit(0, after), Ok(()), "probe admitted");
        assert!(b.admit(0, after).is_err(), "slot held while probing");
        // The probe ends without a verdict (shed / deadline): the slot
        // must come back, or the shard fast-fails forever.
        b.on_abandoned(0);
        assert_eq!(b.admit(0, after), Ok(()), "released slot re-probes");
        assert_eq!(b.probes(), 2);
        b.on_success(0);
        assert_eq!(b.state(0, after), BreakerState::Closed);
    }

    #[test]
    fn abandon_outside_a_probe_changes_nothing() {
        let b = breaker();
        b.on_failure(0, 0);
        b.on_abandoned(0);
        assert_eq!(b.state(0, MS), BreakerState::Closed);
        // The failure count survives the abandon: two more trip it.
        b.on_failure(0, MS);
        b.on_failure(0, 2 * MS);
        assert_eq!(b.state(0, 3 * MS), BreakerState::Open);
    }

    #[test]
    fn tripped_shards_excludes_expired_idle_windows() {
        let b = breaker();
        for i in 0..3 {
            b.on_failure(0, i);
        }
        assert_eq!(b.tripped_shards(50 * MS), 1, "window still running");
        assert_eq!(b.tripped_shards(101 * MS), 0, "expired and idle");
        assert_eq!(b.admit(0, 101 * MS), Ok(()));
        assert_eq!(b.tripped_shards(101 * MS), 1, "probe in flight");
        b.on_abandoned(0);
        assert_eq!(b.tripped_shards(101 * MS), 0, "probe released, idle");
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = CircuitBreaker::new(
            4,
            BreakerConfig {
                failure_threshold: 0,
                open_ms: 100,
            },
        );
        for i in 0..100 {
            assert_eq!(b.admit(7, i), Ok(()));
            b.on_failure(7, i);
        }
        assert_eq!(b.trips(), 0);
        assert_eq!(b.state(7, 1000 * MS), BreakerState::Closed);
    }

    #[test]
    fn shards_are_independent() {
        let b = CircuitBreaker::new(8, BreakerConfig::default());
        let key_a = 0u64;
        let key_b = 1u64 << 32; // different high bits → different shard
        for i in 0..5 {
            b.on_failure(key_a, i);
        }
        assert_eq!(b.state(key_a, 10), BreakerState::Open);
        assert_eq!(b.state(key_b, 10), BreakerState::Closed);
        assert_eq!(b.admit(key_b, 10), Ok(()));
    }
}
