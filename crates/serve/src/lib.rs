//! # mheta-serve — the resident distribution-planning service
//!
//! "Plan this app on this cluster" as a service: a request names an
//! application and a cluster configuration, the reply is the best
//! `GEN_BLOCK` layout the portfolio search found plus its predicted
//! makespan. The pieces:
//!
//! * [`request`] — [`PlanRequest`] and its canonical stable content
//!   hash (FNV-1a over a canonical JSON rendering of cluster config,
//!   program structure, and search parameters);
//! * [`cache`] — a sharded, lock-striped LRU plan cache with hit /
//!   miss / eviction counters and explicit invalidation;
//! * [`singleflight`] — concurrent identical requests coalesce onto
//!   one search; followers share the leader's published result;
//! * [`executor`] — a fixed thread pool over a bounded queue; a full
//!   queue sheds the request with a structured retry-after error
//!   instead of ever blocking admission;
//! * [`planner`] — the in-process front end wiring the above around
//!   `mheta_dist::portfolio_search`, instrumented end to end with
//!   `mheta_obs` service metrics (lifecycle counters, per-stage
//!   latency histograms, a Perfetto request track, trace-context
//!   propagation, a Prometheus exposition, and an always-on flight
//!   recorder);
//! * [`wire`] — the JSON-lines-over-TCP protocol spoken by the
//!   `pland` daemon and the `planctl` client binaries, carrying the
//!   trace context end to end plus `metrics` / `dump` telemetry ops.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod executor;
pub mod planner;
pub mod request;
pub mod singleflight;
pub mod wire;

pub use cache::PlanCache;
pub use executor::{Executor, QueueFull};
pub use planner::{Plan, PlanError, PlanReply, Planner, PlannerConfig};
pub use request::{
    benchmark_by_name, cluster_by_name, fnv1a64, strategy_by_name, PlanRequest, SearchParams,
};
pub use singleflight::{Entry, Flight, SingleFlight};
pub use wire::{parse_request, serve, WireOp};
