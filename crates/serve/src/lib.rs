//! # mheta-serve — the resident distribution-planning service
//!
//! "Plan this app on this cluster" as a service: a request names an
//! application and a cluster configuration, the reply is the best
//! `GEN_BLOCK` layout the portfolio search found plus its predicted
//! makespan. The pieces:
//!
//! * [`request`] — [`PlanRequest`] and its canonical stable content
//!   hash (FNV-1a over a canonical JSON rendering of cluster config,
//!   program structure, and search parameters);
//! * [`cache`] — a sharded, lock-striped LRU plan cache with hit /
//!   miss / eviction counters and explicit invalidation;
//! * [`singleflight`] — concurrent identical requests coalesce onto
//!   one search; followers share the leader's published result;
//! * [`executor`] — a fixed thread pool over a bounded queue; a full
//!   queue sheds the request with a structured retry-after error
//!   instead of ever blocking admission;
//! * [`breaker`] — a per-cache-key-shard circuit breaker: consecutive
//!   search failures trip it open and further requests there shed
//!   fast until a half-open probe succeeds;
//! * [`snapshot`] — crash-safe plan-cache persistence (the checksummed
//!   `mheta-plancache/v1` file) for warm restarts;
//! * [`planner`] — the in-process front end wiring the above around
//!   `mheta_dist::portfolio_search`, instrumented end to end with
//!   `mheta_obs` service metrics (lifecycle counters, per-stage
//!   latency histograms, a Perfetto request track, trace-context
//!   propagation, a Prometheus exposition, and an always-on flight
//!   recorder);
//! * [`wire`] — the JSON-lines-over-TCP protocol spoken by the
//!   `pland` daemon and the `planctl` client binaries, carrying the
//!   trace context and the per-request deadline end to end plus
//!   `metrics` / `dump` telemetry ops, with graceful-drain lifecycle
//!   management and per-connection read/write timeouts.
//!
//! Requests may carry an end-to-end deadline
//! ([`planner::Planner::plan_opts`]): a search the deadline interrupts
//! returns its best incumbent flagged *degraded*; only a request with
//! no incumbent at all fails with `DeadlineExceeded`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod breaker;
pub mod cache;
pub mod executor;
pub mod planner;
pub mod request;
pub mod singleflight;
pub mod snapshot;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::PlanCache;
pub use executor::{Executor, QueueFull};
pub use planner::{Plan, PlanError, PlanReply, Planner, PlannerConfig};
pub use request::{
    benchmark_by_name, cluster_by_name, fnv1a64, strategy_by_name, PlanRequest, SearchParams,
};
pub use singleflight::{Entry, Flight, SingleFlight};
pub use snapshot::SnapshotError;
pub use wire::{parse_request, serve, serve_with, Lifecycle, ServeConfig, WireOp};
