//! Planning requests and their canonical cache key.
//!
//! The cache key is a **canonical stable content hash**: the request's
//! semantic content — cluster configuration, program structure, and
//! search parameters — is rendered to canonical compact JSON (struct
//! declaration order, via the workspace serializer) and hashed with
//! 64-bit FNV-1a. Two requests collide in the cache only if that
//! canonical rendering is byte-identical, which the cache verifies
//! besides the hash, so equal keys really mean equal requests.

use mheta_apps::{Benchmark, Cg, Jacobi, Lanczos, Multigrid, Rna};
use mheta_dist::{PortfolioConfig, Strategy};
use mheta_obs::json::{Serialize, Value};
use mheta_sim::ClusterSpec;

/// Portfolio-search parameters of a planning request. A strict subset
/// of [`PortfolioConfig`] — everything that affects the result, and
/// nothing that does not — so the canonical hash covers exactly the
/// semantic search inputs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchParams {
    /// Evaluation budget granted to each of the four strategies.
    pub max_evals_per_strategy: usize,
    /// Attempts per evaluation.
    pub eval_retries: u32,
    /// Base RNG seed for the stochastic strategies.
    pub seed: u64,
    /// Combined-budget cancellation (0 disables; nonzero values make
    /// results timing-dependent, so cached plans only claim bitwise
    /// reproducibility when this is 0).
    pub max_total_evals: usize,
    /// Stall-convergence cancellation (0 disables).
    pub stall_evals: usize,
    /// Target-score cancellation (nonpositive disables).
    pub target_ns: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        let p = PortfolioConfig::default();
        SearchParams {
            max_evals_per_strategy: p.max_evals_per_strategy,
            eval_retries: p.eval_retries,
            seed: p.seed,
            max_total_evals: p.max_total_evals,
            stall_evals: p.stall_evals,
            target_ns: p.target_ns,
        }
    }
}

impl SearchParams {
    /// The equivalent portfolio configuration. The deadline is not a
    /// search *parameter* — it is per-request operational state (see
    /// [`crate::planner::Planner::plan_opts`]) and deliberately absent
    /// from both this struct and the canonical cache key. Likewise the
    /// delta-evaluation switch: incremental evaluation is
    /// bitwise-identical to full evaluation, so it cannot change a
    /// plan and must not split the cache.
    #[must_use]
    pub fn to_portfolio(&self) -> PortfolioConfig {
        PortfolioConfig {
            max_evals_per_strategy: self.max_evals_per_strategy,
            eval_retries: self.eval_retries,
            seed: self.seed,
            max_total_evals: self.max_total_evals,
            stall_evals: self.stall_evals,
            target_ns: self.target_ns,
            deadline: None,
            delta: true,
        }
    }
}

/// "Plan this app on this cluster": one planning request.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The application to distribute.
    pub bench: Benchmark,
    /// Whether the prefetching program variant is modeled (Jacobi).
    pub prefetch: bool,
    /// The cluster to plan for.
    pub spec: ClusterSpec,
    /// Portfolio-search parameters.
    pub search: SearchParams,
}

impl PlanRequest {
    /// A request with default search parameters.
    #[must_use]
    pub fn new(bench: Benchmark, spec: ClusterSpec) -> Self {
        PlanRequest {
            bench,
            prefetch: false,
            spec,
            search: SearchParams::default(),
        }
    }

    /// Short human-readable label for logs and trace tracks, e.g.
    /// `"Jacobi@DC"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}@{}", self.bench.name(), self.spec.name)
    }

    /// The canonical JSON value the cache key hashes: cluster config,
    /// program structure, and search parameters, in that fixed order.
    /// Field order inside each section is struct declaration order
    /// (the workspace serializer preserves it), so the rendering is a
    /// stable, total function of the request's semantic content.
    #[must_use]
    pub fn canonical_value(&self) -> Value {
        Value::object(vec![
            ("cluster", self.spec.to_value()),
            ("program", self.bench.structure(self.prefetch).to_value()),
            ("search", self.search.to_value()),
        ])
    }

    /// The canonical compact-JSON rendering (the hash input).
    #[must_use]
    pub fn canonical_json(&self) -> String {
        self.canonical_value().to_json()
    }

    /// The canonical stable content hash: 64-bit FNV-1a over
    /// [`PlanRequest::canonical_json`].
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(self.canonical_json().as_bytes())
    }
}

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Look up a benchmark by wire name (case-insensitive) and size
/// (`"small"` or `"default"`/`"paper"`).
#[must_use]
pub fn benchmark_by_name(name: &str, size: &str) -> Option<Benchmark> {
    let small = match size.to_ascii_lowercase().as_str() {
        "small" => true,
        "default" | "paper" => false,
        _ => return None,
    };
    Some(match name.to_ascii_lowercase().as_str() {
        "jacobi" => Benchmark::Jacobi(if small {
            Jacobi::small()
        } else {
            Jacobi::default()
        }),
        "cg" => Benchmark::Cg(if small { Cg::small() } else { Cg::default() }),
        "rna" => Benchmark::Rna(if small { Rna::small() } else { Rna::default() }),
        "lanczos" => Benchmark::Lanczos(if small {
            Lanczos::small()
        } else {
            Lanczos::default()
        }),
        "multigrid" => Benchmark::Multigrid(if small {
            Multigrid::small()
        } else {
            Multigrid::default()
        }),
        _ => return None,
    })
}

/// Look up a cluster preset by wire name (case-insensitive): the Table
/// 1 architectures `DC`, `IO`, `HY1`, `HY2`, or `HOM<n>` for a
/// homogeneous `n`-node cluster.
#[must_use]
pub fn cluster_by_name(name: &str) -> Option<ClusterSpec> {
    match name.to_ascii_uppercase().as_str() {
        "DC" => Some(mheta_sim::presets::dc()),
        "IO" => Some(mheta_sim::presets::io()),
        "HY1" => Some(mheta_sim::presets::hy1()),
        "HY2" => Some(mheta_sim::presets::hy2()),
        other => {
            let n: usize = other.strip_prefix("HOM")?.parse().ok()?;
            if n == 0 {
                None
            } else {
                Some(ClusterSpec::homogeneous(n))
            }
        }
    }
}

/// Parse a strategy's wire name back to the enum.
#[must_use]
pub fn strategy_by_name(name: &str) -> Option<Strategy> {
    Strategy::ALL.into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheta_sim::presets;

    fn req() -> PlanRequest {
        PlanRequest::new(Benchmark::Jacobi(Jacobi::small()), presets::dc())
    }

    #[test]
    fn key_is_stable_across_clones_and_calls() {
        let r = req();
        assert_eq!(r.key(), r.key());
        assert_eq!(r.key(), r.clone().key());
    }

    #[test]
    fn key_changes_with_any_semantic_field() {
        let base = req().key();

        let mut r = req();
        r.spec.nodes[3].cpu_power *= 2.0;
        assert_ne!(r.key(), base, "cluster node change must rekey");

        let mut r = req();
        r.spec.seed ^= 1;
        assert_ne!(r.key(), base, "cluster seed change must rekey");

        let mut r = req();
        r.search.seed ^= 1;
        assert_ne!(r.key(), base, "search seed change must rekey");

        let mut r = req();
        r.search.max_evals_per_strategy += 1;
        assert_ne!(r.key(), base, "budget change must rekey");

        let r = PlanRequest::new(Benchmark::Cg(Cg::small()), presets::dc());
        assert_ne!(r.key(), base, "program change must rekey");
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn wire_lookups() {
        assert!(benchmark_by_name("Jacobi", "small").is_some());
        assert!(benchmark_by_name("cg", "default").is_some());
        assert!(benchmark_by_name("cg", "huge").is_none());
        assert!(benchmark_by_name("fortran", "small").is_none());
        assert_eq!(cluster_by_name("dc").unwrap().name, "DC");
        assert_eq!(cluster_by_name("HOM4").unwrap().len(), 4);
        assert!(cluster_by_name("HOM0").is_none());
        assert!(cluster_by_name("ZZ").is_none());
        assert_eq!(strategy_by_name("gbs"), Some(Strategy::Gbs));
        assert_eq!(strategy_by_name("nope"), None);
    }
}
