//! # mheta-mpi — message passing and explicit I/O over the simulator
//!
//! An MPI-flavoured layer over [`mheta_sim`]: typed point-to-point
//! messaging, binomial-tree collectives, explicit file I/O with
//! asynchronous prefetch, and — crucially for MHETA — an MPI-Jack style
//! interposition mechanism ([`hooks`]) that lets an instrumented
//! iteration observe every operation's variable, peers, sizes, and
//! virtual-clock timestamps without touching application code beyond
//! the structural begin/end markers.
//!
//! The collectives module also exposes *analytical twins* of its
//! schedules ([`collectives::model_reduce`] et al.); the MHETA model
//! uses those to predict reduction time with the exact tree the
//! execution uses.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod collectives;
pub mod comm;
pub mod detector;
pub mod hooks;
pub mod msg;
pub mod runner;

pub use collectives::{
    agree_dead_set, agree_mask, allreduce, barrier, bcast, ft_allreduce, ft_allreduce_among,
    model_allreduce, model_bcast, model_reduce, reduce, HopCost, ReduceOp, TAG_AGREE, TAG_BCAST,
    TAG_COLLECTIVE_BASE, TAG_REDUCE,
};
pub use comm::{Comm, ExecMode, PrefetchToken, RetryPolicy};
pub use detector::{DetectorConfig, HealthState, PhiAccrualDetector, SuspicionSample, Transition};
pub use hooks::{
    HookEvent, NullRecorder, OpInfo, OpKind, Recorder, Scope, ScopeKind, SharedEventLog,
    SharedVecRecorder, VecRecorder,
};
pub use runner::{run_app, AppRun, RunOptions};
