//! The per-rank communicator: typed messaging, explicit file I/O, and
//! structural scope markers, all routed through MPI-Jack style hooks.

use mheta_sim::{Prefetch, RankCtx, SimDur, SimError, SimResult, VarId};

use crate::hooks::{HookEvent, OpInfo, OpKind, Recorder, Scope, ScopeKind};
use crate::msg;

/// Retry-with-exponential-backoff policy for transient disk faults.
///
/// Every synchronous read, write, and prefetch issue that fails with
/// [`SimError::TransientIo`] is retried up to `max_attempts` times in
/// total; before attempt `k+1` the rank's virtual clock is charged
/// `min(base_backoff * multiplier^(k-1), max_backoff)`. All other
/// errors surface immediately — only transient faults are worth
/// retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt.
    pub base_backoff: SimDur,
    /// Growth factor applied to the backoff per additional failure.
    pub multiplier: f64,
    /// Ceiling on any single backoff charge: the exponential growth
    /// saturates here instead of overflowing the u64 nanosecond clock
    /// for large attempt counts.
    pub max_backoff: SimDur,
}

/// Largest exponent ever fed to the backoff multiplier. `2^32` growth
/// already exceeds any plausible [`RetryPolicy::max_backoff`], and a
/// capped exponent keeps `powi` far away from producing values whose
/// u64 conversion would saturate misleadingly.
const MAX_BACKOFF_EXP: u32 = 32;

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDur::from_micros_f64(50.0),
            multiplier: 2.0,
            max_backoff: SimDur::from_millis_f64(100.0),
        }
    }
}

impl RetryPolicy {
    /// Fail fast: a single attempt, no retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDur::ZERO,
            multiplier: 1.0,
            max_backoff: SimDur::ZERO,
        }
    }

    /// Backoff to charge after failed attempt number `attempt` (1-based).
    /// The exponent is capped before the multiply and the result is
    /// clamped to `max_backoff`, so arbitrarily large attempt counts
    /// (or multipliers) cannot overflow the virtual clock.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> SimDur {
        let exp = attempt.saturating_sub(1).min(MAX_BACKOFF_EXP);
        let mult = if self.multiplier.is_finite() && self.multiplier >= 1.0 {
            self.multiplier
        } else {
            1.0
        };
        let ns = self.base_backoff.as_nanos_f64() * mult.powi(exp as i32);
        SimDur::from_nanos_f64(ns).min(self.max_backoff)
    }
}

/// How the communicator executes I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Production semantics: prefetches are asynchronous.
    #[default]
    Normal,
    /// The instrumented iteration of §4.1.1: prefetch issues become
    /// blocking reads and waits become no-ops (Figure 5), and — when
    /// `force_ooc` is set — applications treat every distributed
    /// variable as out of core so I/O costs exist for all of them.
    Instrument {
        /// Force all distributed variables through the out-of-core path.
        force_ooc: bool,
    },
}

/// A pending asynchronous read issued through [`Comm::prefetch`].
#[derive(Debug)]
pub struct PrefetchToken {
    var: VarId,
    inner: TokenInner,
}

#[derive(Debug)]
enum TokenInner {
    /// Real asynchronous read in flight.
    Async(Prefetch),
    /// Instrument mode: the read already completed synchronously.
    Completed(Vec<f64>),
}

/// Rank-local communicator handle. Owns the structural scope state and
/// dispatches every operation through the recorder's hooks.
pub struct Comm<'a, R: Recorder> {
    ctx: &'a mut RankCtx,
    rec: &'a mut R,
    scope: Scope,
    mode: ExecMode,
    retry: RetryPolicy,
}

impl<'a, R: Recorder> Comm<'a, R> {
    /// Wrap a rank context with a recorder and execution mode. I/O
    /// retries default to [`RetryPolicy::default`], so applications
    /// absorb occasional transient disk faults without code changes;
    /// on a fault-free cluster the policy never triggers.
    pub fn new(ctx: &'a mut RankCtx, rec: &'a mut R, mode: ExecMode) -> Self {
        Comm {
            ctx,
            rec,
            scope: Scope::default(),
            mode,
            retry: RetryPolicy::default(),
        }
    }

    /// Builder-style override of the retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace the retry policy in place.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Run `op`, absorbing transient I/O faults per the retry policy.
    /// Each absorbed fault charges its backoff to the virtual clock and
    /// reports a [`HookEvent::Retry`] through the recorder.
    fn io_with_retry<T>(
        &mut self,
        kind: OpKind,
        var: VarId,
        mut op: impl FnMut(&mut RankCtx) -> SimResult<T>,
    ) -> SimResult<T> {
        let mut attempt = 1;
        loop {
            match op(self.ctx) {
                Err(SimError::TransientIo { .. }) if attempt < self.retry.max_attempts => {
                    let backoff = self.retry.backoff_for(attempt);
                    self.ctx.charge(backoff);
                    self.rec.record(&HookEvent::Retry {
                        kind,
                        var: Some(var),
                        attempt,
                        backoff,
                        at: self.ctx.now(),
                    });
                    attempt += 1;
                }
                done => return done,
            }
        }
    }

    /// This rank's index.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Cluster size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.ctx.size()
    }

    /// Execution mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// True when applications must treat distributed variables as out
    /// of core (instrumented iteration, §4.1.1).
    #[must_use]
    pub fn force_ooc(&self) -> bool {
        matches!(self.mode, ExecMode::Instrument { force_ooc: true })
    }

    /// Direct access to the underlying rank context (clock, disk,
    /// memory tracker).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    /// Immutable access to the rank context.
    #[must_use]
    pub fn ctx_ref(&self) -> &RankCtx {
        self.ctx
    }

    /// Current structural scope.
    #[must_use]
    pub fn scope(&self) -> Scope {
        self.scope
    }

    // ---- structural markers -------------------------------------------------

    fn scope_event(&mut self, enter: bool, kind: ScopeKind, id: u32) {
        let at = self.ctx.now();
        let ev = if enter {
            HookEvent::ScopeEnter { kind, id, at }
        } else {
            HookEvent::ScopeExit { kind, id, at }
        };
        self.rec.record(&ev);
    }

    /// Mark the start of outer iteration `i`.
    pub fn begin_iteration(&mut self, i: u32) {
        self.ctx.note_iteration(i);
        self.scope_event(true, ScopeKind::Iteration, i);
    }

    /// Crash-aware variant of [`Comm::begin_iteration`] for resilient
    /// drivers: an iteration-triggered crash scheduled for this rank at
    /// iteration `i` fires here, before the scope marker, surfacing as
    /// [`SimError::Crashed`].
    pub fn begin_iteration_ft(&mut self, i: u32) -> SimResult<()> {
        self.ctx.crash_check_iteration(i)?;
        self.begin_iteration(i);
        Ok(())
    }

    /// Mark the end of outer iteration `i`.
    pub fn end_iteration(&mut self, i: u32) {
        self.scope_event(false, ScopeKind::Iteration, i);
    }

    /// Mark the start of parallel section `p`; resets tile and stage.
    pub fn begin_section(&mut self, p: u32) {
        self.scope = Scope {
            section: p,
            tile: 0,
            stage: 0,
        };
        self.scope_event(true, ScopeKind::Section, p);
    }

    /// Mark the end of parallel section `p`.
    pub fn end_section(&mut self, p: u32) {
        self.scope_event(false, ScopeKind::Section, p);
    }

    /// Mark the start of tile `t` within the current section.
    pub fn begin_tile(&mut self, t: u32) {
        self.scope.tile = t;
        self.scope.stage = 0;
        self.scope_event(true, ScopeKind::Tile, t);
    }

    /// Mark the end of tile `t`.
    pub fn end_tile(&mut self, t: u32) {
        self.scope_event(false, ScopeKind::Tile, t);
    }

    /// Mark the start of stage `s` within the current tile.
    pub fn begin_stage(&mut self, s: u32) {
        self.scope.stage = s;
        self.scope_event(true, ScopeKind::Stage, s);
    }

    /// Mark the end of stage `s`.
    pub fn end_stage(&mut self, s: u32) {
        self.scope_event(false, ScopeKind::Stage, s);
    }

    // ---- computation --------------------------------------------------------

    /// Perform `work_units` of computation over `ws_bytes` of working
    /// set. Not hooked: MHETA derives stage computation as stage time
    /// minus I/O time (§4.1.1).
    pub fn compute(&mut self, work_units: f64, ws_bytes: u64) -> SimDur {
        self.ctx.compute(work_units, ws_bytes)
    }

    // ---- messaging ----------------------------------------------------------

    fn op_event(&mut self, info: OpInfo, start: mheta_sim::SimTime) {
        let end = self.ctx.now();
        self.rec.record(&HookEvent::Op { info, start, end });
    }

    /// Send a slice of `f64` to `to`.
    ///
    /// Like every communication or file operation, this is a
    /// crash-trigger point: a time-triggered crash scheduled for this
    /// rank at or before the current virtual instant fires here as
    /// [`SimError::Crashed`].
    pub fn send_f64s(&mut self, to: usize, tag: u32, data: &[f64]) -> SimResult<()> {
        self.ctx.crash_check_time()?;
        let start = self.ctx.now();
        let payload = msg::encode_f64s(data);
        let bytes = payload.len() as u64;
        self.ctx.send(to, tag, payload)?;
        self.op_event(
            OpInfo {
                kind: OpKind::Send,
                var: None,
                peer: Some(to),
                bytes,
                elems: data.len(),
                scope: self.scope,
                blocked: SimDur::ZERO,
            },
            start,
        );
        Ok(())
    }

    /// Receive a slice of `f64` from `from`.
    pub fn recv_f64s(&mut self, from: usize, tag: u32) -> SimResult<Vec<f64>> {
        self.ctx.crash_check_time()?;
        let start = self.ctx.now();
        let payload = self.ctx.recv(from, tag)?;
        let end = self.ctx.now();
        let data = msg::decode_f64s(&payload);
        // Blocked time is end − start − o_r; the recorder only needs
        // the interval, but we surface the transport-level stall too.
        let blocked = end.saturating_since(start);
        self.op_event(
            OpInfo {
                kind: OpKind::Recv,
                var: None,
                peer: Some(from),
                bytes: payload.len() as u64,
                elems: data.len(),
                scope: self.scope,
                blocked,
            },
            start,
        );
        Ok(data)
    }

    /// Send a single scalar.
    pub fn send_scalar(&mut self, to: usize, tag: u32, x: f64) -> SimResult<()> {
        self.send_f64s(to, tag, std::slice::from_ref(&x))
    }

    /// Receive a single scalar.
    pub fn recv_scalar(&mut self, from: usize, tag: u32) -> SimResult<f64> {
        let v = self.recv_f64s(from, tag)?;
        debug_assert_eq!(v.len(), 1, "scalar message carried {} values", v.len());
        Ok(v[0])
    }

    // ---- explicit file I/O ---------------------------------------------------

    /// Synchronously read `out.len()` elements of `var` at `offset`
    /// from the local disk.
    pub fn file_read(&mut self, var: VarId, offset: usize, out: &mut [f64]) -> SimResult<()> {
        self.ctx.crash_check_time()?;
        let start = self.ctx.now();
        self.io_with_retry(OpKind::FileRead, var, |ctx| ctx.disk_read(var, offset, out))?;
        self.op_event(
            OpInfo {
                kind: OpKind::FileRead,
                var: Some(var),
                peer: None,
                bytes: (out.len() * 8) as u64,
                elems: out.len(),
                scope: self.scope,
                blocked: SimDur::ZERO,
            },
            start,
        );
        Ok(())
    }

    /// Synchronously write `data` to `var` at `offset` on the local disk.
    pub fn file_write(&mut self, var: VarId, offset: usize, data: &[f64]) -> SimResult<()> {
        self.ctx.crash_check_time()?;
        let start = self.ctx.now();
        self.io_with_retry(OpKind::FileWrite, var, |ctx| {
            ctx.disk_write(var, offset, data)
        })?;
        self.op_event(
            OpInfo {
                kind: OpKind::FileWrite,
                var: Some(var),
                peer: None,
                bytes: (data.len() * 8) as u64,
                elems: data.len(),
                scope: self.scope,
                blocked: SimDur::ZERO,
            },
            start,
        );
        Ok(())
    }

    /// Issue an asynchronous read (prefetch). In instrumented mode this
    /// becomes a blocking read (Figure 5) so its full latency is
    /// measurable from the hooks.
    pub fn prefetch(&mut self, var: VarId, offset: usize, len: usize) -> SimResult<PrefetchToken> {
        self.ctx.crash_check_time()?;
        let start = self.ctx.now();
        let inner = match self.mode {
            ExecMode::Normal => {
                TokenInner::Async(self.io_with_retry(OpKind::PrefetchIssue, var, |ctx| {
                    ctx.prefetch_issue(var, offset, len)
                })?)
            }
            ExecMode::Instrument { .. } => {
                let mut buf = vec![0.0; len];
                self.io_with_retry(OpKind::PrefetchIssue, var, |ctx| {
                    ctx.disk_read(var, offset, &mut buf)
                })?;
                TokenInner::Completed(buf)
            }
        };
        self.op_event(
            OpInfo {
                kind: OpKind::PrefetchIssue,
                var: Some(var),
                peer: None,
                bytes: (len * 8) as u64,
                elems: len,
                scope: self.scope,
                blocked: SimDur::ZERO,
            },
            start,
        );
        Ok(PrefetchToken { var, inner })
    }

    /// Wait for a prefetch. In instrumented mode this is a no-op
    /// (Figure 5): the data was already delivered by the transformed
    /// issue.
    pub fn wait(&mut self, token: PrefetchToken) -> Vec<f64> {
        let start = self.ctx.now();
        let var = token.var;
        let (data, blocked) = match token.inner {
            TokenInner::Async(p) => self.ctx.prefetch_wait(p),
            TokenInner::Completed(data) => (data, SimDur::ZERO),
        };
        self.op_event(
            OpInfo {
                kind: OpKind::PrefetchWait,
                var: Some(var),
                peer: None,
                bytes: (data.len() * 8) as u64,
                elems: data.len(),
                scope: self.scope,
                blocked,
            },
            start,
        );
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::VecRecorder;
    use mheta_sim::{run_cluster, ClusterSpec};

    fn quiet(n: usize) -> ClusterSpec {
        let mut s = ClusterSpec::homogeneous(n);
        s.noise.amplitude = 0.0;
        s
    }

    #[test]
    fn scope_markers_flow_to_recorder() {
        let spec = quiet(1);
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = VecRecorder::default();
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            comm.begin_section(2);
            comm.begin_stage(1);
            assert_eq!(
                comm.scope(),
                Scope {
                    section: 2,
                    tile: 0,
                    stage: 1
                }
            );
            comm.end_stage(1);
            comm.end_section(2);
            Ok(rec.events.len())
        })
        .unwrap();
        assert_eq!(run.results[0], 4);
    }

    #[test]
    fn typed_send_recv_roundtrip_records_ops() {
        let spec = quiet(2);
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = VecRecorder::default();
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            if comm.rank() == 0 {
                comm.send_f64s(1, 9, &[1.0, 2.0, 3.0])?;
                Ok((vec![], rec.events.len()))
            } else {
                let v = comm.recv_f64s(0, 9)?;
                Ok((v, rec.events.len()))
            }
        })
        .unwrap();
        assert_eq!(run.results[1].0, vec![1.0, 2.0, 3.0]);
        assert_eq!(run.results[0].1, 1);
        assert_eq!(run.results[1].1, 1);
    }

    #[test]
    fn instrument_mode_prefetch_is_blocking_and_wait_free() {
        let spec = quiet(1);
        let run = run_cluster(&spec, false, |ctx| {
            ctx.disk.create(7, 64);
            let mut rec = VecRecorder::default();
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Instrument { force_ooc: true });
            let before = comm.ctx_ref().now();
            let tok = comm.prefetch(7, 0, 64)?;
            let after_issue = comm.ctx_ref().now();
            let data = comm.wait(tok);
            let after_wait = comm.ctx_ref().now();
            assert_eq!(data.len(), 64);
            // Issue charged like a blocking read; wait advanced nothing.
            assert!(after_issue > before);
            assert_eq!(after_wait, after_issue);
            Ok(())
        })
        .unwrap();
        drop(run);
    }

    #[test]
    fn normal_mode_wait_blocks_for_latency() {
        let spec = quiet(1);
        run_cluster(&spec, false, |ctx| {
            ctx.disk.create(7, 1024);
            let mut rec = VecRecorder::default();
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let tok = comm.prefetch(7, 0, 1024)?;
            let data = comm.wait(tok);
            assert_eq!(data.len(), 1024);
            // The wait op must show blocked time (no overlap compute).
            let blocked = rec.events.iter().find_map(|e| match e {
                HookEvent::Op { info, .. } if info.kind == OpKind::PrefetchWait => {
                    Some(info.blocked)
                }
                _ => None,
            });
            assert!(blocked.unwrap() > SimDur::ZERO);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn force_ooc_only_in_instrument_mode() {
        let spec = quiet(1);
        run_cluster(&spec, false, |ctx| {
            let mut rec = VecRecorder::default();
            let comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            assert!(!comm.force_ooc());
            let _ = comm;
            let comm = Comm::new(ctx, &mut rec, ExecMode::Instrument { force_ooc: true });
            assert!(comm.force_ooc());
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(2), p.backoff_for(1) * 2u64);
        assert_eq!(p.backoff_for(3), p.backoff_for(1) * 4u64);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy::default();
        // Huge attempt counts clamp to the ceiling rather than wrapping
        // or saturating the u64 nanosecond clock.
        for attempt in [12, 63, 64, 1_000, u32::MAX] {
            assert_eq!(p.backoff_for(attempt), p.max_backoff);
        }
        // A pathological multiplier cannot smuggle in infinity either.
        let wild = RetryPolicy {
            multiplier: f64::INFINITY,
            ..RetryPolicy::default()
        };
        assert_eq!(wild.backoff_for(5), wild.base_backoff);
        let shrinking = RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(shrinking.backoff_for(5), shrinking.base_backoff);
    }

    #[test]
    fn transient_faults_are_retried_and_reported() {
        let mut spec = quiet(1);
        spec.faults.disk_read_fault_rate = 0.5;
        spec.seed = 11;
        run_cluster(&spec, false, |ctx| {
            ctx.disk.create(3, 32);
            let mut rec = VecRecorder::default();
            let mut comm =
                Comm::new(ctx, &mut rec, ExecMode::Normal).with_retry_policy(RetryPolicy {
                    max_attempts: 16,
                    ..RetryPolicy::default()
                });
            let before = comm.ctx_ref().now();
            let mut buf = [0.0; 32];
            // Enough reads that a 50% fault rate must trip at least once.
            for _ in 0..24 {
                comm.file_read(3, 0, &mut buf)?;
            }
            let after = comm.ctx_ref().now();
            // Move `comm` out of scope so `rec` can be inspected.
            let _ = comm;
            let retries: Vec<_> = rec
                .events
                .iter()
                .filter_map(|e| match e {
                    HookEvent::Retry {
                        kind, var, backoff, ..
                    } => Some((*kind, *var, *backoff)),
                    _ => None,
                })
                .collect();
            assert!(!retries.is_empty(), "no retries at 50% fault rate");
            assert!(retries
                .iter()
                .all(|(k, v, b)| *k == OpKind::FileRead && *v == Some(3) && *b > SimDur::ZERO));
            // Backoff and failed attempts were charged to the clock.
            assert!(after > before);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn retries_converge_to_fault_free_data() {
        let mut faulty = quiet(1);
        faulty.faults.disk_read_fault_rate = 0.4;
        faulty.faults.disk_write_fault_rate = 0.4;
        faulty.seed = 5;
        let data: Vec<f64> = (0..64).map(f64::from).collect();
        let run = run_cluster(&faulty, false, |ctx| {
            ctx.disk.create(1, 64);
            let mut rec = VecRecorder::default();
            let mut comm =
                Comm::new(ctx, &mut rec, ExecMode::Normal).with_retry_policy(RetryPolicy {
                    max_attempts: 32,
                    ..RetryPolicy::default()
                });
            let wr: Vec<f64> = (0..64).map(f64::from).collect();
            comm.file_write(1, 0, &wr)?;
            let mut buf = vec![0.0; 64];
            comm.file_read(1, 0, &mut buf)?;
            Ok(buf)
        })
        .unwrap();
        // Numerics are unaffected by absorbed faults.
        assert_eq!(run.results[0], data);
    }

    #[test]
    fn exhausted_retries_surface_transient_io() {
        let mut spec = quiet(1);
        spec.faults.disk_read_fault_rate = 0.97;
        spec.seed = 3;
        let run = run_cluster(&spec, false, |ctx| {
            ctx.disk.create(3, 8);
            let mut rec = VecRecorder::default();
            let mut comm =
                Comm::new(ctx, &mut rec, ExecMode::Normal).with_retry_policy(RetryPolicy::none());
            let mut buf = [0.0; 8];
            // With no retries and a 97% fault rate, some read in this
            // run must fail; surface the first error.
            for _ in 0..8 {
                comm.file_read(3, 0, &mut buf)?;
            }
            Ok(())
        });
        match run {
            Err(SimError::TransientIo {
                rank: 0, var: 3, ..
            }) => {}
            other => panic!("expected TransientIo, got {other:?}"),
        }
    }

    #[test]
    fn file_ops_record_var_ids() {
        let spec = quiet(1);
        run_cluster(&spec, false, |ctx| {
            ctx.disk.create(3, 16);
            let mut rec = VecRecorder::default();
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            comm.begin_section(1);
            comm.begin_stage(0);
            comm.file_write(3, 0, &[2.0; 16])?;
            let mut buf = [0.0; 16];
            comm.file_read(3, 0, &mut buf)?;
            comm.end_stage(0);
            comm.end_section(1);
            let io_ops: Vec<_> = rec
                .events
                .iter()
                .filter_map(|e| match e {
                    HookEvent::Op { info, .. } => Some(info),
                    _ => None,
                })
                .collect();
            assert_eq!(io_ops.len(), 2);
            assert!(io_ops.iter().all(|i| i.var == Some(3)));
            assert!(io_ops.iter().all(|i| i.scope
                == Scope {
                    section: 1,
                    tile: 0,
                    stage: 0
                }));
            Ok(())
        })
        .unwrap();
    }
}
