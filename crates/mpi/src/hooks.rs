//! MPI-Jack style interposition hooks.
//!
//! The paper's MPI-Jack tool exploits PMPI, the MPI profiling layer, to
//! run arbitrary code before and after any intercepted MPI call
//! (Figure 3). Here every [`crate::Comm`] operation is routed through a
//! [`Recorder`], which receives:
//!
//! * **scope events** — the begin/end markers for iterations, parallel
//!   sections, tiles, and stages that the paper says "the user or
//!   preprocessor can insert" (§4.1.1), and
//! * **operation events** — each send/recv/file-read/file-write with
//!   its variable ID (extracted from the call parameters, exactly as
//!   MPI-Jack's pre-hook does), peer ranks, byte counts, and start/end
//!   timestamps on the rank's virtual clock.
//!
//! Computation time per stage is *not* recorded directly: MHETA derives
//! it as stage duration minus the I/O time inside the stage (§4.1.1),
//! and the profile builder in `mheta-core` does the same.

use std::sync::Arc;

use parking_lot::Mutex;

use mheta_sim::{SimDur, SimTime, VarId};

/// Position in the program's static structure: which parallel section,
/// tile, and stage an operation occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Scope {
    /// Parallel-section index (PID in the paper's Figure 3).
    pub section: u32,
    /// Tile index within the section (TID); always 0 for non-pipelined
    /// sections.
    pub tile: u32,
    /// Stage index within the tile (SID).
    pub stage: u32,
}

/// Which structural bracket a scope event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub enum ScopeKind {
    /// One outer iteration of the application's convergence loop.
    Iteration,
    /// A parallel section (code between communication events).
    Section,
    /// A tile (pipelined sections have several per section).
    Tile,
    /// A stage (innermost compute+I/O bracket).
    Stage,
}

/// The kind of intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub enum OpKind {
    /// Message send (`MPI_Send`).
    Send,
    /// Message receive (`MPI_Recv`).
    Recv,
    /// Synchronous file read (`MPI_File_read`).
    FileRead,
    /// Synchronous file write (`MPI_File_write`).
    FileWrite,
    /// Asynchronous read issue (`MPI_File_iread`).
    PrefetchIssue,
    /// Wait for an asynchronous read (`MPI_Wait`).
    PrefetchWait,
}

/// Everything the pre/post hook pair learns about one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct OpInfo {
    /// Operation kind.
    pub kind: OpKind,
    /// Variable involved, for I/O ops (the VID of Figure 3).
    pub var: Option<VarId>,
    /// Peer rank, for communication ops (the nIDs of §4.1.2).
    pub peer: Option<usize>,
    /// Payload or transfer size in bytes.
    pub bytes: u64,
    /// Element count for f64 I/O (0 for raw sends).
    pub elems: usize,
    /// Structural position of the call.
    pub scope: Scope,
    /// Time spent blocked (receives and prefetch waits; zero otherwise).
    pub blocked: SimDur,
}

/// One event delivered to a recorder.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub enum HookEvent {
    /// A structural bracket opened.
    ScopeEnter {
        /// Bracket kind.
        kind: ScopeKind,
        /// Bracket index (iteration number, section id, …).
        id: u32,
        /// Virtual time of entry.
        at: SimTime,
    },
    /// A structural bracket closed.
    ScopeExit {
        /// Bracket kind.
        kind: ScopeKind,
        /// Bracket index.
        id: u32,
        /// Virtual time of exit.
        at: SimTime,
    },
    /// An intercepted operation completed.
    Op {
        /// What the pre/post hooks observed.
        info: OpInfo,
        /// Virtual time the operation began.
        start: SimTime,
        /// Virtual time it completed.
        end: SimTime,
    },
    /// A transient I/O fault was absorbed by the communicator's retry
    /// policy: the failed attempt's cost and the backoff delay have
    /// been charged to the rank's clock, and the operation is about to
    /// be retried.
    Retry {
        /// The operation being retried.
        kind: OpKind,
        /// Variable involved, for I/O ops.
        var: Option<VarId>,
        /// Which attempt just failed (1 = first try).
        attempt: u32,
        /// Backoff charged before the next attempt.
        backoff: SimDur,
        /// Virtual time after the backoff.
        at: SimTime,
    },
}

/// A sink for hook events — the "arbitrary code" MPI-Jack lets a user
/// attach. `mheta-core` provides the profile-building implementation;
/// [`NullRecorder`] is the zero-cost default for production runs.
pub trait Recorder: Send {
    /// Receive one event. Called synchronously from the rank's thread.
    fn record(&mut self, ev: &HookEvent);
}

/// Discards all events (hooks "undefined", left side of Figure 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _ev: &HookEvent) {}
}

/// Retains every event verbatim; useful for tests and debugging.
///
/// A `VecRecorder` belongs to exactly one rank thread (`record` takes
/// `&mut self`, so the borrow checker enforces this): the runner builds
/// one per rank and hands the filled recorders back after the run. To
/// share a single sink across every rank thread instead, use
/// [`SharedEventLog`].
#[derive(Debug, Default)]
pub struct VecRecorder {
    /// All events in program order.
    pub events: Vec<HookEvent>,
}

impl Recorder for VecRecorder {
    fn record(&mut self, ev: &HookEvent) {
        self.events.push(ev.clone());
    }
}

/// A thread-safe hook-event sink shared by every rank of a run —
/// the lock-guarded alternative to collecting one [`VecRecorder`] per
/// rank and merging afterwards.
///
/// Clone the log, then hand each rank a [`SharedEventLog::recorder`];
/// all of them append into the same rank-tagged vector. The *global*
/// interleaving across ranks depends on host thread scheduling and is
/// therefore **not** deterministic, but each rank's subsequence is —
/// consumers that need determinism should use [`SharedEventLog::per_rank`],
/// which restores the per-rank program order.
#[derive(Debug, Default, Clone)]
pub struct SharedEventLog {
    inner: Arc<Mutex<Vec<(usize, HookEvent)>>>,
}

impl SharedEventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that appends rank-tagged events to this log.
    #[must_use]
    pub fn recorder(&self, rank: usize) -> SharedVecRecorder {
        SharedVecRecorder {
            rank,
            log: Arc::clone(&self.inner),
        }
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drain the log in arrival order (nondeterministic across ranks).
    #[must_use]
    pub fn take(&self) -> Vec<(usize, HookEvent)> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Drain the log into deterministic per-rank event sequences.
    /// `ranks` is the communicator size; events from ranks at or beyond
    /// it are discarded.
    #[must_use]
    pub fn per_rank(&self, ranks: usize) -> Vec<Vec<HookEvent>> {
        let mut out = vec![Vec::new(); ranks];
        for (rank, ev) in self.take() {
            if let Some(slot) = out.get_mut(rank) {
                slot.push(ev);
            }
        }
        out
    }
}

/// One rank's handle onto a [`SharedEventLog`].
#[derive(Debug, Clone)]
pub struct SharedVecRecorder {
    rank: usize,
    log: Arc<Mutex<Vec<(usize, HookEvent)>>>,
}

impl Recorder for SharedVecRecorder {
    fn record(&mut self, ev: &HookEvent) {
        self.log.lock().push((self.rank, ev.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_recorder_accumulates_in_order() {
        let mut r = VecRecorder::default();
        r.record(&HookEvent::ScopeEnter {
            kind: ScopeKind::Stage,
            id: 1,
            at: SimTime(5),
        });
        r.record(&HookEvent::ScopeExit {
            kind: ScopeKind::Stage,
            id: 1,
            at: SimTime(9),
        });
        assert_eq!(r.events.len(), 2);
        assert!(matches!(
            r.events[0],
            HookEvent::ScopeEnter {
                kind: ScopeKind::Stage,
                ..
            }
        ));
    }

    #[test]
    fn shared_log_collects_across_handles_and_splits_per_rank() {
        let log = SharedEventLog::new();
        let mut r0 = log.recorder(0);
        let mut r1 = log.recorder(1);
        r0.record(&HookEvent::ScopeEnter {
            kind: ScopeKind::Iteration,
            id: 0,
            at: SimTime(0),
        });
        r1.record(&HookEvent::ScopeEnter {
            kind: ScopeKind::Iteration,
            id: 0,
            at: SimTime(3),
        });
        r0.record(&HookEvent::ScopeExit {
            kind: ScopeKind::Iteration,
            id: 0,
            at: SimTime(7),
        });
        assert_eq!(log.len(), 3);
        let per_rank = log.per_rank(2);
        assert_eq!(per_rank[0].len(), 2);
        assert_eq!(per_rank[1].len(), 1);
        assert!(log.is_empty(), "per_rank drains the log");
    }

    #[test]
    fn null_recorder_is_inert() {
        let mut r = NullRecorder;
        r.record(&HookEvent::ScopeEnter {
            kind: ScopeKind::Iteration,
            id: 0,
            at: SimTime(0),
        });
    }
}
