//! Collective operations over the binomial tree, plus the *analytical
//! twins* of the same schedules.
//!
//! The executable collectives (`reduce`, `bcast`, `allreduce`,
//! `barrier`) are built from point-to-point sends and receives, exactly
//! the MPICH binomial algorithms. The analytical functions
//! (`model_reduce`, `model_bcast`, `model_allreduce`) replay the same
//! schedule over per-node "ready" timestamps with the microbenchmarked
//! per-hop costs — they are what the MHETA model in `mheta-core` uses
//! to predict reduction sections, so the model and the execution share
//! one schedule by construction (the paper defers reduction modeling to
//! the dissertation \[25\]; this is our concrete realization).

use mheta_sim::SimResult;

use crate::comm::Comm;
use crate::hooks::Recorder;

/// Lower bound of the tag range reserved for collective traffic.
/// Point-to-point application messages must use tags below this;
/// observers classify any send/receive with `tag >= TAG_COLLECTIVE_BASE`
/// as part of a collective schedule.
pub const TAG_COLLECTIVE_BASE: u32 = 0x4000_0000;
/// Tag used by reduction-phase messages.
pub const TAG_REDUCE: u32 = TAG_COLLECTIVE_BASE | 1;
/// Tag used by broadcast-phase messages.
pub const TAG_BCAST: u32 = TAG_COLLECTIVE_BASE | 2;

/// Elementwise combine operation for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn combine(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

/// Binomial-tree reduction to rank 0. On return, `data` on rank 0 holds
/// the combined result; other ranks' buffers are unspecified.
pub fn reduce<R: Recorder>(
    comm: &mut Comm<'_, R>,
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<()> {
    let rank = comm.rank();
    let size = comm.size();
    let mut mask = 1usize;
    while mask < size {
        if rank & mask == 0 {
            let child = rank | mask;
            if child < size {
                let v = comm.recv_f64s(child, TAG_REDUCE)?;
                op.combine(data, &v);
            }
        } else {
            let parent = rank & !mask;
            comm.send_f64s(parent, TAG_REDUCE, data)?;
            break;
        }
        mask <<= 1;
    }
    Ok(())
}

/// Binomial-tree broadcast from rank 0 into `data` on every rank.
pub fn bcast<R: Recorder>(comm: &mut Comm<'_, R>, data: &mut [f64]) -> SimResult<()> {
    let rank = comm.rank();
    let size = comm.size();
    let mut mask = 1usize;
    while mask < size {
        if rank & mask != 0 {
            let parent = rank - mask;
            let v = comm.recv_f64s(parent, TAG_BCAST)?;
            data.copy_from_slice(&v);
            break;
        }
        mask <<= 1;
    }
    // Forwarding pass: a node sends at every mask strictly below the
    // level it received at (rank 0's level is the tree root).
    let level = if rank == 0 {
        size.next_power_of_two()
    } else {
        rank & rank.wrapping_neg() // lowest set bit
    };
    let mut m = level >> 1;
    while m > 0 {
        let dst = rank + m;
        if dst < size {
            comm.send_f64s(dst, TAG_BCAST, data)?;
        }
        m >>= 1;
    }
    Ok(())
}

/// Reduction followed by broadcast: every rank ends with the combined
/// value in `data`.
pub fn allreduce<R: Recorder>(
    comm: &mut Comm<'_, R>,
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<()> {
    reduce(comm, op, data)?;
    bcast(comm, data)
}

/// Synchronize all ranks (an empty allreduce).
pub fn barrier<R: Recorder>(comm: &mut Comm<'_, R>) -> SimResult<()> {
    let mut token = [0.0f64; 1];
    allreduce(comm, ReduceOp::Sum, &mut token)
}

// ---- analytical twins --------------------------------------------------

/// Per-hop communication costs used by the analytical schedules, in
/// fractional nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopCost {
    /// Sender-side overhead `o_s`.
    pub o_s: f64,
    /// Receiver-side overhead `o_r`.
    pub o_r: f64,
    /// In-flight transfer time `alpha + bytes * beta`.
    pub transfer: f64,
}

/// Replay the binomial reduce-to-0 schedule over per-node ready times.
/// Returns each node's clock after its role in the reduction completes
/// (after its send, for non-roots; after the last receive, for root).
#[must_use]
pub fn model_reduce(ready: &[f64], cost: HopCost) -> Vec<f64> {
    let size = ready.len();
    let mut clock = ready.to_vec();
    // Arrival time of each non-root's single send to its parent.
    let mut arrival = vec![0.0f64; size];
    // Children have numerically larger ranks, so process descending.
    for r in (0..size).rev() {
        let lowbit = if r == 0 {
            size.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < lowbit && mask < size {
            let child = r | mask;
            if child < size && child != r {
                clock[r] = (clock[r]).max(arrival[child]) + cost.o_r;
            }
            mask <<= 1;
        }
        if r != 0 {
            clock[r] += cost.o_s;
            arrival[r] = clock[r] + cost.transfer;
        }
    }
    clock
}

/// Replay the binomial broadcast-from-0 schedule over per-node ready
/// times. Returns each node's clock after its receives and forwards.
#[must_use]
pub fn model_bcast(ready: &[f64], cost: HopCost) -> Vec<f64> {
    let size = ready.len();
    let mut clock = ready.to_vec();
    let mut arrival = vec![f64::NEG_INFINITY; size];
    // Parents have numerically smaller ranks, so process ascending.
    for r in 0..size {
        if r != 0 {
            clock[r] = clock[r].max(arrival[r]) + cost.o_r;
        }
        let level = if r == 0 {
            size.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut m = level >> 1;
        while m > 0 {
            let dst = r + m;
            if dst < size {
                clock[r] += cost.o_s;
                arrival[dst] = clock[r] + cost.transfer;
            }
            m >>= 1;
        }
    }
    clock
}

/// Replay reduce + broadcast (the allreduce used for global reductions
/// in the benchmark applications).
#[must_use]
pub fn model_allreduce(ready: &[f64], cost: HopCost) -> Vec<f64> {
    model_bcast(&model_reduce(ready, cost), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ExecMode;
    use crate::hooks::NullRecorder;
    use mheta_sim::{run_cluster, ClusterSpec};

    fn quiet(n: usize) -> ClusterSpec {
        let mut s = ClusterSpec::homogeneous(n);
        s.noise.amplitude = 0.0;
        s
    }

    fn run_allreduce(n: usize, op: ReduceOp) -> Vec<Vec<f64>> {
        let spec = quiet(n);
        run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let mut v = vec![comm.rank() as f64 + 1.0, -(comm.rank() as f64)];
            allreduce(&mut comm, op, &mut v)?;
            Ok(v)
        })
        .unwrap()
        .results
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for n in 1..=9 {
            let results = run_allreduce(n, ReduceOp::Sum);
            let expect_a: f64 = (1..=n).map(|r| r as f64).sum();
            let expect_b: f64 = -(0..n).map(|r| r as f64).sum::<f64>();
            for (r, v) in results.iter().enumerate() {
                assert!(
                    (v[0] - expect_a).abs() < 1e-9 && (v[1] - expect_b).abs() < 1e-9,
                    "n={n} rank {r}: got {v:?}, want [{expect_a}, {expect_b}]"
                );
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let results = run_allreduce(7, ReduceOp::Max);
        for v in &results {
            assert_eq!(v[0], 7.0);
            assert_eq!(v[1], 0.0);
        }
        let results = run_allreduce(7, ReduceOp::Min);
        for v in &results {
            assert_eq!(v[0], 1.0);
            assert_eq!(v[1], -6.0);
        }
    }

    #[test]
    fn reduce_leaves_result_at_root() {
        let spec = quiet(5);
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let mut v = vec![1.0];
            reduce(&mut comm, ReduceOp::Sum, &mut v)?;
            Ok(v[0])
        })
        .unwrap();
        assert_eq!(run.results[0], 5.0);
    }

    #[test]
    fn barrier_completes_on_all_sizes() {
        for n in [1, 2, 3, 8] {
            let spec = quiet(n);
            run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                barrier(&mut comm)
            })
            .unwrap();
        }
    }

    /// The analytical twins must match the executed schedule exactly
    /// when noise is off.
    #[test]
    fn model_allreduce_matches_execution() {
        for n in [2usize, 3, 4, 5, 8] {
            let spec = quiet(n);
            // Stagger the ranks' start times with compute.
            let run = run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                ctx.compute(100.0 * (ctx.rank() as f64 + 1.0), u64::MAX);
                let ready = ctx.now().as_nanos() as f64;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                let mut v = vec![1.0];
                allreduce(&mut comm, ReduceOp::Sum, &mut v)?;
                Ok((ready, ctx.now().as_nanos() as f64))
            })
            .unwrap();
            let ready: Vec<f64> = run.results.iter().map(|r| r.0).collect();
            let actual: Vec<f64> = run.results.iter().map(|r| r.1).collect();
            let cost = HopCost {
                o_s: spec.net.send_overhead_ns,
                o_r: spec.net.recv_overhead_ns,
                transfer: spec.net.transfer_ns(8),
            };
            let predicted = model_allreduce(&ready, cost);
            for r in 0..n {
                assert!(
                    (predicted[r] - actual[r]).abs() < 2.0,
                    "n={n} rank {r}: model {} vs actual {}",
                    predicted[r],
                    actual[r]
                );
            }
        }
    }

    #[test]
    fn model_reduce_root_dominates_ready_times() {
        let ready = vec![0.0, 1e6, 2e6, 3e6];
        let cost = HopCost {
            o_s: 1e3,
            o_r: 1e3,
            transfer: 5e4,
        };
        let out = model_reduce(&ready, cost);
        // Root cannot finish before the latest contributor's value
        // could possibly arrive.
        assert!(out[0] >= 3e6 + cost.o_s + cost.transfer + cost.o_r);
    }

    #[test]
    fn model_bcast_single_node_is_identity() {
        let cost = HopCost {
            o_s: 1.0,
            o_r: 1.0,
            transfer: 1.0,
        };
        assert_eq!(model_bcast(&[42.0], cost), vec![42.0]);
        assert_eq!(model_reduce(&[42.0], cost), vec![42.0]);
    }
}
