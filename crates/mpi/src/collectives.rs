//! Collective operations over the binomial tree, plus the *analytical
//! twins* of the same schedules.
//!
//! The executable collectives (`reduce`, `bcast`, `allreduce`,
//! `barrier`) are built from point-to-point sends and receives, exactly
//! the MPICH binomial algorithms. The analytical functions
//! (`model_reduce`, `model_bcast`, `model_allreduce`) replay the same
//! schedule over per-node "ready" timestamps with the microbenchmarked
//! per-hop costs — they are what the MHETA model in `mheta-core` uses
//! to predict reduction sections, so the model and the execution share
//! one schedule by construction (the paper defers reduction modeling to
//! the dissertation \[25\]; this is our concrete realization).

use mheta_sim::{SimError, SimResult};

use crate::comm::Comm;
use crate::hooks::Recorder;

/// Lower bound of the tag range reserved for collective traffic.
/// Point-to-point application messages must use tags below this;
/// observers classify any send/receive with `tag >= TAG_COLLECTIVE_BASE`
/// as part of a collective schedule.
pub const TAG_COLLECTIVE_BASE: u32 = 0x4000_0000;
/// Tag used by reduction-phase messages.
pub const TAG_REDUCE: u32 = TAG_COLLECTIVE_BASE | 1;
/// Tag used by broadcast-phase messages.
pub const TAG_BCAST: u32 = TAG_COLLECTIVE_BASE | 2;
/// Tag used by the post-crash dead-set agreement round.
pub const TAG_AGREE: u32 = TAG_COLLECTIVE_BASE | 3;

/// Elementwise combine operation for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Bitwise OR of the raw `f64` bit patterns; used to agree on
    /// bitmask-encoded sets (e.g. observed dead ranks) in one
    /// reduction.
    BitOr,
}

impl ReduceOp {
    fn combine(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
            ReduceOp::BitOr => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = f64::from_bits(a.to_bits() | b.to_bits());
                }
            }
        }
    }
}

/// Binomial-tree reduction to rank 0. On return, `data` on rank 0 holds
/// the combined result; other ranks' buffers are unspecified.
pub fn reduce<R: Recorder>(
    comm: &mut Comm<'_, R>,
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<()> {
    let rank = comm.rank();
    let size = comm.size();
    let mut mask = 1usize;
    while mask < size {
        if rank & mask == 0 {
            let child = rank | mask;
            if child < size {
                let v = comm.recv_f64s(child, TAG_REDUCE)?;
                op.combine(data, &v);
            }
        } else {
            let parent = rank & !mask;
            comm.send_f64s(parent, TAG_REDUCE, data)?;
            break;
        }
        mask <<= 1;
    }
    Ok(())
}

/// Binomial-tree broadcast from rank 0 into `data` on every rank.
pub fn bcast<R: Recorder>(comm: &mut Comm<'_, R>, data: &mut [f64]) -> SimResult<()> {
    let rank = comm.rank();
    let size = comm.size();
    let mut mask = 1usize;
    while mask < size {
        if rank & mask != 0 {
            let parent = rank - mask;
            let v = comm.recv_f64s(parent, TAG_BCAST)?;
            data.copy_from_slice(&v);
            break;
        }
        mask <<= 1;
    }
    // Forwarding pass: a node sends at every mask strictly below the
    // level it received at (rank 0's level is the tree root).
    let level = if rank == 0 {
        size.next_power_of_two()
    } else {
        rank & rank.wrapping_neg() // lowest set bit
    };
    let mut m = level >> 1;
    while m > 0 {
        let dst = rank + m;
        if dst < size {
            comm.send_f64s(dst, TAG_BCAST, data)?;
        }
        m >>= 1;
    }
    Ok(())
}

/// Reduction followed by broadcast: every rank ends with the combined
/// value in `data`.
pub fn allreduce<R: Recorder>(
    comm: &mut Comm<'_, R>,
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<()> {
    reduce(comm, op, data)?;
    bcast(comm, data)
}

/// Synchronize all ranks (an empty allreduce).
pub fn barrier<R: Recorder>(comm: &mut Comm<'_, R>) -> SimResult<()> {
    let mut token = [0.0f64; 1];
    allreduce(comm, ReduceOp::Sum, &mut token)
}

// ---- fault-tolerant collectives ----------------------------------------

/// Fault-tolerant allreduce: the same binomial reduce + broadcast
/// schedule, but a dead peer never aborts a survivor. A dead child's
/// contribution is skipped (the wait resolves through the failure
/// detector), a send to a dead parent is a silent no-op at the
/// transport, and a rank whose broadcast parent died keeps its partial
/// reduction value. No live rank can hang: every blocking receive either
/// matches a message or resolves as `PeerDead`.
///
/// When a rank crashed mid-schedule, survivors' output values may
/// disagree (some saw the contribution, some lost the broadcast), so the
/// combined value must not be used for control decisions in that
/// iteration — resilient drivers detect the crash at the iteration
/// boundary and roll back past it. The function reports whether any dead
/// peer was encountered.
pub fn ft_allreduce<R: Recorder>(
    comm: &mut Comm<'_, R>,
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<bool> {
    let members: Vec<usize> = (0..comm.size()).collect();
    ft_allreduce_among(comm, &members, op, data).map(|observed| observed != 0)
}

/// [`ft_allreduce`] over an explicit member list: the binomial tree runs
/// over a *dense* re-indexing of `members` (which must be sorted and
/// contain the calling rank), so a resilient driver can keep original
/// rank numbering after a crash and simply drop dead ranks from the
/// roster. Returns a bitmask of cluster ranks observed dead during this
/// schedule (bit `r` set when some receive from rank `r` resolved as
/// `PeerDead` on *this* rank) — callers OR these observations into the
/// per-iteration agreement round.
pub fn ft_allreduce_among<R: Recorder>(
    comm: &mut Comm<'_, R>,
    members: &[usize],
    op: ReduceOp,
    data: &mut [f64],
) -> SimResult<u64> {
    let mut observed: u64 = 0;
    ft_tree_exchange(
        comm,
        members,
        (TAG_REDUCE, TAG_BCAST),
        data,
        |phase, acc, recv| match (phase, recv) {
            (TreePhase::Reduce, Ok(v)) => op.combine(acc, v),
            (TreePhase::Bcast, Ok(v)) => acc.copy_from_slice(v),
            (_, Err(peer)) => observed |= 1u64 << peer,
        },
    )?;
    Ok(observed)
}

/// Which half of the fault-tolerant binomial schedule a receive landed
/// in: the reduce-to-root pass or the broadcast back down the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreePhase {
    /// Reduce-to-`members[0]` pass: the value came from a tree child.
    Reduce,
    /// Broadcast pass: the value came from the tree parent.
    Bcast,
}

/// The dense binomial reduce + broadcast scaffolding shared by every
/// fault-tolerant collective ([`ft_allreduce_among`], [`agree_mask`],
/// [`agree_dead_set`]): walk the reduce tree toward `members[0]`,
/// then rebroadcast down the same tree, forwarding to the caller only
/// the *semantic* decisions — how to fold a received payload into the
/// local value in each phase, and what to do when a receive resolves as
/// `PeerDead`.
///
/// `members` must be sorted, contain the calling rank, and stay below
/// rank 64 (the dead-set bitmask width). A send to a dead peer is a
/// silent no-op at the transport, so no live member can hang. The
/// handler receives `Ok(payload)` for a delivered message and
/// `Err(peer)` for a receive that resolved against dead rank `peer`;
/// `data` carries this rank's current value and ends as its final one.
fn ft_tree_exchange<R: Recorder>(
    comm: &mut Comm<'_, R>,
    members: &[usize],
    (reduce_tag, bcast_tag): (u32, u32),
    data: &mut [f64],
    mut handle: impl FnMut(TreePhase, &mut [f64], Result<&[f64], usize>),
) -> SimResult<()> {
    if members.iter().any(|&r| r >= 64) {
        return Err(SimError::InvalidConfig(format!(
            "fault-tolerant collectives support at most 64 ranks, member list reaches rank {}",
            members.iter().max().copied().unwrap_or(0)
        )));
    }
    let me = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("calling rank must be in the member list");
    let k = members.len();
    // Reduce phase: fold children, then send up to the tree parent.
    let mut mask = 1usize;
    while mask < k {
        if me & mask == 0 {
            let child = me | mask;
            if child < k {
                match comm.recv_f64s(members[child], reduce_tag) {
                    Ok(v) => handle(TreePhase::Reduce, data, Ok(&v)),
                    Err(SimError::PeerDead { peer, .. }) => {
                        handle(TreePhase::Reduce, data, Err(peer));
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            let parent = me & !mask;
            comm.send_f64s(members[parent], reduce_tag, data)?;
            break;
        }
        mask <<= 1;
    }
    // Broadcast phase: adopt the parent's value, then forward down.
    let mut mask = 1usize;
    while mask < k {
        if me & mask != 0 {
            let parent = me - mask;
            match comm.recv_f64s(members[parent], bcast_tag) {
                Ok(v) => handle(TreePhase::Bcast, data, Ok(&v)),
                Err(SimError::PeerDead { peer, .. }) => {
                    handle(TreePhase::Bcast, data, Err(peer));
                }
                Err(e) => return Err(e),
            }
            break;
        }
        mask <<= 1;
    }
    let level = if me == 0 {
        k.next_power_of_two()
    } else {
        me & me.wrapping_neg()
    };
    let mut m = level >> 1;
    while m > 0 {
        let dst = me + m;
        if dst < k {
            comm.send_f64s(members[dst], bcast_tag, data)?;
        }
        m >>= 1;
    }
    Ok(())
}

/// One round of the crash-detection agreement protocol, run by
/// resilient drivers at every iteration boundary: OR-reduce the
/// members' observation bitmasks (bit `r` = "I saw rank `r` dead") down
/// the dense binomial tree over `members` and broadcast the union back.
/// Failures observed *during the round itself* are folded into the
/// propagated mask, so a dead member's bit reaches the root through its
/// tree parent even when nobody noticed the crash earlier.
///
/// Survivors decide "a crash happened" iff their returned mask is
/// non-zero. For any rank dead before the round starts, every live
/// member's mask comes back non-zero: a member that receives the root's
/// union gets at least the dead subtree root's bit, and a member whose
/// broadcast parent died observes that death directly. (A rank that
/// dies *mid-round* between its reduce send and its broadcast duties
/// can leave views divergent for one iteration; the next boundary's
/// round then converges, because the crash precedes it entirely.)
pub fn agree_mask<R: Recorder>(
    comm: &mut Comm<'_, R>,
    members: &[usize],
    bits: u64,
) -> SimResult<u64> {
    let mut data = [f64::from_bits(bits)];
    // Both phases OR: the union only grows on the way up, and a member
    // that receives the root's union keeps any death it observed itself.
    ft_tree_exchange(
        comm,
        members,
        (TAG_AGREE, TAG_AGREE),
        &mut data,
        |_, acc, recv| {
            let add = match recv {
                Ok(v) => v[0].to_bits(),
                Err(peer) => 1u64 << peer,
            };
            acc[0] = f64::from_bits(acc[0].to_bits() | add);
        },
    )?;
    Ok(data[0].to_bits())
}

/// Post-crash dead-set agreement: survivors run a binomial reduce +
/// broadcast over a *dense* re-indexing of the sorted survivor list,
/// OR-combining per-rank dead bitmasks, so every survivor converges on
/// the same dead-set while paying the realistic communication cost of
/// the agreement protocol. Returns the agreed dead ranks, sorted.
///
/// Precondition: every survivor calls this at the same program point
/// with an identical local view of the dead-set (guaranteed at an
/// iteration boundary after a completed [`ft_allreduce`], whose
/// completion is host-ordered after any crash inside the iteration);
/// the dense trees would otherwise mismatch and deadlock.
pub fn agree_dead_set<R: Recorder>(comm: &mut Comm<'_, R>) -> SimResult<Vec<usize>> {
    let size = comm.size();
    if size > 64 {
        return Err(SimError::InvalidConfig(format!(
            "dead-set agreement bitmask supports at most 64 ranks, cluster has {size}"
        )));
    }
    let bits: u64 = comm
        .ctx()
        .dead_ranks()
        .iter()
        .fold(0, |acc, &(r, _)| acc | (1u64 << r));
    let survivors: Vec<usize> = (0..size).filter(|r| bits & (1 << r) == 0).collect();
    let mut data = [f64::from_bits(bits)];
    // OR on the way up, adopt the root's union on the way down. The
    // precondition gives every survivor an identical starting view, so
    // mid-round deaths are ignorable: the divergence is resolved by the
    // caller's next agreement round.
    ft_tree_exchange(
        comm,
        &survivors,
        (TAG_AGREE, TAG_AGREE),
        &mut data,
        |phase, acc, recv| {
            if let Ok(v) = recv {
                acc[0] = match phase {
                    TreePhase::Reduce => f64::from_bits(acc[0].to_bits() | v[0].to_bits()),
                    TreePhase::Bcast => v[0],
                };
            }
        },
    )?;
    let bits = data[0].to_bits();
    Ok((0..size).filter(|r| bits & (1 << r) != 0).collect())
}

// ---- analytical twins --------------------------------------------------

/// Per-hop communication costs used by the analytical schedules, in
/// fractional nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopCost {
    /// Sender-side overhead `o_s`.
    pub o_s: f64,
    /// Receiver-side overhead `o_r`.
    pub o_r: f64,
    /// In-flight transfer time `alpha + bytes * beta`.
    pub transfer: f64,
}

/// Replay the binomial reduce-to-0 schedule over per-node ready times.
/// Returns each node's clock after its role in the reduction completes
/// (after its send, for non-roots; after the last receive, for root).
#[must_use]
pub fn model_reduce(ready: &[f64], cost: HopCost) -> Vec<f64> {
    let size = ready.len();
    let mut clock = ready.to_vec();
    // Arrival time of each non-root's single send to its parent.
    let mut arrival = vec![0.0f64; size];
    // Children have numerically larger ranks, so process descending.
    for r in (0..size).rev() {
        let lowbit = if r == 0 {
            size.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < lowbit && mask < size {
            let child = r | mask;
            if child < size && child != r {
                clock[r] = (clock[r]).max(arrival[child]) + cost.o_r;
            }
            mask <<= 1;
        }
        if r != 0 {
            clock[r] += cost.o_s;
            arrival[r] = clock[r] + cost.transfer;
        }
    }
    clock
}

/// Replay the binomial broadcast-from-0 schedule over per-node ready
/// times. Returns each node's clock after its receives and forwards.
#[must_use]
pub fn model_bcast(ready: &[f64], cost: HopCost) -> Vec<f64> {
    let size = ready.len();
    let mut clock = ready.to_vec();
    let mut arrival = vec![f64::NEG_INFINITY; size];
    // Parents have numerically smaller ranks, so process ascending.
    for r in 0..size {
        if r != 0 {
            clock[r] = clock[r].max(arrival[r]) + cost.o_r;
        }
        let level = if r == 0 {
            size.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut m = level >> 1;
        while m > 0 {
            let dst = r + m;
            if dst < size {
                clock[r] += cost.o_s;
                arrival[dst] = clock[r] + cost.transfer;
            }
            m >>= 1;
        }
    }
    clock
}

/// Replay reduce + broadcast (the allreduce used for global reductions
/// in the benchmark applications).
#[must_use]
pub fn model_allreduce(ready: &[f64], cost: HopCost) -> Vec<f64> {
    model_bcast(&model_reduce(ready, cost), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ExecMode;
    use crate::hooks::NullRecorder;
    use mheta_sim::{run_cluster, ClusterSpec};

    fn quiet(n: usize) -> ClusterSpec {
        let mut s = ClusterSpec::homogeneous(n);
        s.noise.amplitude = 0.0;
        s
    }

    fn run_allreduce(n: usize, op: ReduceOp) -> Vec<Vec<f64>> {
        let spec = quiet(n);
        run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let mut v = vec![comm.rank() as f64 + 1.0, -(comm.rank() as f64)];
            allreduce(&mut comm, op, &mut v)?;
            Ok(v)
        })
        .unwrap()
        .results
    }

    #[test]
    fn ft_tree_exchange_reduces_then_broadcasts() {
        // Drive the shared scaffolding directly with a handler that
        // max-folds on the way up and adopts on the way down: every
        // member must converge on the global max, and each member must
        // see its receives in the documented phases.
        let spec = quiet(5);
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut data = [comm.rank() as f64 * 10.0];
            let mut phases = Vec::new();
            ft_tree_exchange(
                &mut comm,
                &members,
                (TAG_REDUCE, TAG_BCAST),
                &mut data,
                |phase, acc, recv| {
                    phases.push(phase);
                    if let Ok(v) = recv {
                        match phase {
                            TreePhase::Reduce => acc[0] = acc[0].max(v[0]),
                            TreePhase::Bcast => acc[0] = v[0],
                        }
                    }
                },
            )?;
            Ok((data[0], phases))
        })
        .unwrap();
        for (rank, (value, phases)) in run.results.iter().enumerate() {
            assert_eq!(*value, 40.0, "rank {rank} must see the global max");
            // Non-root members receive exactly one broadcast value, and
            // it arrives after every reduce-phase receive.
            let bcasts = phases.iter().filter(|&&p| p == TreePhase::Bcast).count();
            assert_eq!(bcasts, usize::from(rank != 0), "rank {rank}");
            if let Some(first_bcast) = phases.iter().position(|&p| p == TreePhase::Bcast) {
                assert!(
                    phases[first_bcast..].iter().all(|&p| p == TreePhase::Bcast),
                    "rank {rank}: reduce receives must precede the broadcast"
                );
            }
        }
    }

    #[test]
    fn ft_tree_exchange_rejects_wide_member_lists() {
        let spec = quiet(2);
        let err = run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let mut data = [0.0];
            match ft_tree_exchange(
                &mut comm,
                &[0, 64],
                (TAG_REDUCE, TAG_BCAST),
                &mut data,
                |_, _, _| {},
            ) {
                Err(SimError::InvalidConfig(msg)) => Ok(msg.contains("at most 64")),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        })
        .unwrap();
        assert!(err.results.iter().all(|&ok| ok));
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for n in 1..=9 {
            let results = run_allreduce(n, ReduceOp::Sum);
            let expect_a: f64 = (1..=n).map(|r| r as f64).sum();
            let expect_b: f64 = -(0..n).map(|r| r as f64).sum::<f64>();
            for (r, v) in results.iter().enumerate() {
                assert!(
                    (v[0] - expect_a).abs() < 1e-9 && (v[1] - expect_b).abs() < 1e-9,
                    "n={n} rank {r}: got {v:?}, want [{expect_a}, {expect_b}]"
                );
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let results = run_allreduce(7, ReduceOp::Max);
        for v in &results {
            assert_eq!(v[0], 7.0);
            assert_eq!(v[1], 0.0);
        }
        let results = run_allreduce(7, ReduceOp::Min);
        for v in &results {
            assert_eq!(v[0], 1.0);
            assert_eq!(v[1], -6.0);
        }
    }

    #[test]
    fn reduce_leaves_result_at_root() {
        let spec = quiet(5);
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            let mut v = vec![1.0];
            reduce(&mut comm, ReduceOp::Sum, &mut v)?;
            Ok(v[0])
        })
        .unwrap();
        assert_eq!(run.results[0], 5.0);
    }

    #[test]
    fn barrier_completes_on_all_sizes() {
        for n in [1, 2, 3, 8] {
            let spec = quiet(n);
            run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                barrier(&mut comm)
            })
            .unwrap();
        }
    }

    /// The analytical twins must match the executed schedule exactly
    /// when noise is off.
    #[test]
    fn model_allreduce_matches_execution() {
        for n in [2usize, 3, 4, 5, 8] {
            let spec = quiet(n);
            // Stagger the ranks' start times with compute.
            let run = run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                ctx.compute(100.0 * (ctx.rank() as f64 + 1.0), u64::MAX);
                let ready = ctx.now().as_nanos() as f64;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                let mut v = vec![1.0];
                allreduce(&mut comm, ReduceOp::Sum, &mut v)?;
                Ok((ready, ctx.now().as_nanos() as f64))
            })
            .unwrap();
            let ready: Vec<f64> = run.results.iter().map(|r| r.0).collect();
            let actual: Vec<f64> = run.results.iter().map(|r| r.1).collect();
            let cost = HopCost {
                o_s: spec.net.send_overhead_ns,
                o_r: spec.net.recv_overhead_ns,
                transfer: spec.net.transfer_ns(8),
            };
            let predicted = model_allreduce(&ready, cost);
            for r in 0..n {
                assert!(
                    (predicted[r] - actual[r]).abs() < 2.0,
                    "n={n} rank {r}: model {} vs actual {}",
                    predicted[r],
                    actual[r]
                );
            }
        }
    }

    #[test]
    fn model_reduce_root_dominates_ready_times() {
        let ready = vec![0.0, 1e6, 2e6, 3e6];
        let cost = HopCost {
            o_s: 1e3,
            o_r: 1e3,
            transfer: 5e4,
        };
        let out = model_reduce(&ready, cost);
        // Root cannot finish before the latest contributor's value
        // could possibly arrive.
        assert!(out[0] >= 3e6 + cost.o_s + cost.transfer + cost.o_r);
    }

    #[test]
    fn ft_allreduce_matches_plain_allreduce_without_crashes() {
        for n in [1usize, 2, 3, 5, 8] {
            let spec = quiet(n);
            let run = run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                let mut v = vec![comm.rank() as f64 + 1.0];
                let saw_dead = ft_allreduce(&mut comm, ReduceOp::Sum, &mut v)?;
                Ok((v[0], saw_dead))
            })
            .unwrap();
            let expect: f64 = (1..=n).map(|r| r as f64).sum();
            for (r, &(v, saw_dead)) in run.results.iter().enumerate() {
                assert_eq!(v, expect, "n={n} rank {r}");
                assert!(!saw_dead);
            }
        }
    }

    #[test]
    fn ft_allreduce_survives_dead_rank_without_hanging() {
        use mheta_sim::CrashSpec;
        let mut spec = quiet(4);
        spec.faults.crashes = vec![CrashSpec::at_iteration(2, 0)];
        spec.faults.checkpoint_interval = 1;
        let run = run_cluster(&spec, false, |ctx| {
            let mut rec = NullRecorder;
            let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
            if comm.rank() == 2 {
                match comm.ctx().crash_check_iteration(0) {
                    Err(SimError::Crashed { rank: 2, .. }) => return Ok((-1.0, false)),
                    other => panic!("expected crash, got {other:?}"),
                }
            }
            let mut v = vec![comm.rank() as f64 + 1.0];
            let saw_dead = ft_allreduce(&mut comm, ReduceOp::Sum, &mut v)?;
            Ok((v[0], saw_dead))
        })
        .unwrap();
        // Dead rank 2 was an interior tree node: its own value and its
        // child rank 3's contribution are both lost, so the root
        // converges on 1 + 2 = 3 and broadcasts that to rank 1; rank 3's
        // broadcast parent is the dead rank, so it keeps its partial
        // (its own 4.0). Values may disagree mid-crash — the driver
        // rolls back past this iteration — but nobody hangs.
        assert_eq!(run.results[0].0, 3.0);
        assert_eq!(run.results[1].0, 3.0);
        assert_eq!(run.results[3].0, 4.0);
        assert!(
            run.results.iter().any(|&(_, saw)| saw),
            "some survivor must have observed the dead peer"
        );
    }

    #[test]
    fn agree_dead_set_converges_all_survivors() {
        use mheta_sim::CrashSpec;
        for n in [2usize, 4, 5, 8] {
            let mut spec = quiet(n);
            spec.faults.crashes = vec![CrashSpec::at_iteration(1, 0)];
            spec.faults.checkpoint_interval = 1;
            let run = run_cluster(&spec, false, |ctx| {
                let mut rec = NullRecorder;
                let mut comm = Comm::new(ctx, &mut rec, ExecMode::Normal);
                if comm.rank() == 1 {
                    let _ = comm.ctx().crash_check_iteration(0).unwrap_err();
                    return Ok(vec![]);
                }
                // Align every survivor past the crash so local views
                // are consistent before the agreement round.
                let mut v = vec![0.0];
                ft_allreduce(&mut comm, ReduceOp::Sum, &mut v)?;
                agree_dead_set(&mut comm)
            })
            .unwrap();
            for (r, dead) in run.results.iter().enumerate() {
                if r == 1 {
                    continue;
                }
                assert_eq!(dead, &vec![1], "n={n} rank {r}");
            }
        }
    }

    #[test]
    fn model_bcast_single_node_is_identity() {
        let cost = HopCost {
            o_s: 1.0,
            o_r: 1.0,
            transfer: 1.0,
        };
        assert_eq!(model_bcast(&[42.0], cost), vec![42.0]);
        assert_eq!(model_reduce(&[42.0], cost), vec![42.0]);
    }
}
