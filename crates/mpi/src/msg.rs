//! Typed message payload encoding.
//!
//! The simulator kernel moves opaque byte vectors; applications exchange
//! `f64` slices and scalars. This module is the (de)serialization seam,
//! kept deliberately dumb: little-endian `f64`s, no framing, since both
//! endpoints agree on types by construction.

use bytes::{Buf, BufMut, BytesMut};

/// Encode a slice of `f64` into a payload.
#[must_use]
pub fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(data.len() * 8);
    for &x in data {
        buf.put_f64_le(x);
    }
    buf.to_vec()
}

/// Decode a payload produced by [`encode_f64s`].
///
/// # Panics
/// Panics if the payload length is not a multiple of 8 — that is a
/// protocol bug between two ranks of the same binary, not a runtime
/// condition to recover from.
#[must_use]
pub fn decode_f64s(payload: &[u8]) -> Vec<f64> {
    assert!(
        payload.len().is_multiple_of(8),
        "payload of {} bytes is not a whole number of f64s",
        payload.len()
    );
    let mut buf = payload;
    let mut out = Vec::with_capacity(payload.len() / 8);
    while buf.has_remaining() {
        out.push(buf.get_f64_le());
    }
    out
}

/// Encode a single scalar.
#[must_use]
pub fn encode_f64(x: f64) -> Vec<u8> {
    encode_f64s(std::slice::from_ref(&x))
}

/// Decode a single scalar.
///
/// # Panics
/// Panics if the payload is not exactly 8 bytes.
#[must_use]
pub fn decode_f64(payload: &[u8]) -> f64 {
    assert_eq!(payload.len(), 8, "expected a single f64 payload");
    f64::from_le_bytes(payload.try_into().expect("length checked above"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_slice() {
        let xs = [1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&xs)), xs);
    }

    #[test]
    fn roundtrip_scalar() {
        assert_eq!(decode_f64(&encode_f64(42.125)), 42.125);
    }

    #[test]
    fn empty_slice_roundtrips() {
        assert!(decode_f64s(&encode_f64s(&[])).is_empty());
    }

    #[test]
    fn nan_payload_survives_transport() {
        let d = decode_f64(&encode_f64(f64::NAN));
        assert!(d.is_nan());
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn ragged_payload_panics() {
        let _ = decode_f64s(&[0u8; 7]);
    }
}
