//! Phi-accrual failure detection over virtual-clock heartbeats.
//!
//! Crash-stop failures are easy: a blocking receive against a dead rank
//! resolves as `PeerDead`, and one agreement round converges the
//! survivors. The harder problem is the rank that keeps answering
//! messages but has silently slowed down — background load, thermal
//! throttling, a failing disk controller. Because the simulator's
//! collectives synchronize virtual clocks at every iteration boundary,
//! *wall-clock* heartbeat intervals cannot localize the slow member:
//! everyone's clock advances together. Instead, each rank's heartbeat
//! carries its own **per-row compute time** for the iteration — a
//! progress report that is invariant under GEN_BLOCK rebalancing (rows
//! move, per-row speed does not) and directly proportional to the
//! node's effective slowdown.
//!
//! The detector is a deterministic replica: every member feeds the same
//! exchanged sample vector (the result of a fault-tolerant max-allreduce
//! where each member fills only its own slot) into an identical
//! [`PhiAccrualDetector`], so every member reaches identical suspicion
//! levels and identical state-machine transitions without any extra
//! agreement protocol. The suspicion level follows Hayashibara et al.'s
//! phi-accrual construction: `phi = -log10 P(X >= x)` under a normal
//! model of the member's healthy baseline samples.
//!
//! The per-member state machine:
//!
//! ```text
//!             phi > threshold            confirm streak
//!   Healthy ────────────────▶ Suspected ───────────────▶ Degraded
//!      ▲  ▲      (and ratio guard)   │                      │
//!      │  │                          │ sample back          │ ratio back
//!      │  │                          ▼ under guard          ▼ under rejoin
//!      │  └───────────────────── Healthy               Rejoined
//!      │                                                    │
//!      └────────────────────────────────────────────────────┘
//!
//!   (any state) ── missed heartbeat / PeerDead ──▶ Dead   [absorbing]
//! ```
//!
//! **Zero-false-positive guarantee on fault-free runs**: a member is
//! suspected only when *both* its phi exceeds `phi_threshold` *and* its
//! sample exceeds `suspect_ratio` times the frozen healthy baseline.
//! The phi term adapts to each member's observed jitter; the ratio
//! guard bounds the damage of a degenerate (near-zero variance)
//! baseline, where even benign noise produces unbounded phi. Property
//! tests in this module sweep all architecture presets and seeds to
//! hold the guarantee.

use std::fmt;

/// Tunable thresholds for the [`PhiAccrualDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Suspicion level above which a member becomes suspected;
    /// `phi = 8` means "the healthy model puts under 10⁻⁸ probability
    /// on a sample this large".
    pub phi_threshold: f64,
    /// Number of leading samples used to learn a member's healthy
    /// baseline; no suspicion is raised while the baseline is learning.
    pub warmup_samples: usize,
    /// Ratio guard: a sample must also exceed `suspect_ratio × baseline
    /// mean` to count as suspect, bounding false positives when the
    /// baseline variance is degenerate (deterministic runs).
    pub suspect_ratio: f64,
    /// Consecutive suspect samples required to confirm `Suspected →
    /// Degraded` (and calm samples for `Degraded → Rejoined`).
    pub confirm_samples: u32,
    /// A degraded member whose sample falls back under `rejoin_ratio ×
    /// baseline mean` for `confirm_samples` iterations is rejoined.
    pub rejoin_ratio: f64,
    /// Floor on the baseline standard deviation, as a fraction of the
    /// baseline mean, so phi stays finite on zero-variance baselines.
    pub min_sigma_frac: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            phi_threshold: 8.0,
            warmup_samples: 3,
            suspect_ratio: 1.35,
            confirm_samples: 2,
            rejoin_ratio: 1.15,
            min_sigma_frac: 0.02,
        }
    }
}

/// Health of one member as judged by the detector replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Progress reports match the learned baseline.
    Healthy,
    /// Phi tripped the threshold; awaiting confirmation.
    Suspected,
    /// Confirmed persistent slowdown; the member still participates but
    /// should carry less work.
    Degraded,
    /// The member missed a heartbeat entirely (crash-stop); absorbing.
    Dead,
    /// A degraded member whose reports recovered; transitions back to
    /// [`HealthState::Healthy`] on the next observation.
    Rejoined,
}

impl HealthState {
    /// Stable lower-case name for metrics and telemetry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspected => "suspected",
            HealthState::Degraded => "degraded",
            HealthState::Dead => "dead",
            HealthState::Rejoined => "rejoined",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One state-machine transition, as observed by the detector replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// The member whose state changed.
    pub member: usize,
    /// State before the observation.
    pub from: HealthState,
    /// State after the observation.
    pub to: HealthState,
    /// Iteration of the observation that caused the transition.
    pub at_iteration: u32,
    /// Virtual instant of the observation, ns.
    pub at_ns: u64,
}

/// One point on a member's suspicion timeline, for telemetry export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspicionSample {
    /// Iteration the sample belongs to.
    pub iteration: u32,
    /// Virtual instant of the observation, ns.
    pub at_ns: u64,
    /// The member the sample describes.
    pub member: usize,
    /// Suspicion level (0 while the baseline is learning).
    pub phi: f64,
    /// Sample / baseline-mean ratio (1.0 while learning).
    pub ratio: f64,
    /// State after this observation was absorbed.
    pub state: HealthState,
}

#[derive(Debug, Clone)]
struct MemberHealth {
    state: HealthState,
    /// Baseline samples collected during warmup.
    window: Vec<f64>,
    /// Frozen healthy-baseline mean (None while learning).
    mean: Option<f64>,
    /// Frozen healthy-baseline standard deviation.
    sigma: f64,
    suspect_streak: u32,
    calm_streak: u32,
    /// Latest sample / baseline ratio (the slowdown estimate while
    /// degraded).
    ratio: f64,
    /// Iteration of the first suspect sample of the current streak,
    /// for detection-latency accounting.
    first_suspect_ns: Option<u64>,
}

impl MemberHealth {
    fn new() -> Self {
        MemberHealth {
            state: HealthState::Healthy,
            window: Vec::new(),
            mean: None,
            sigma: 0.0,
            suspect_streak: 0,
            calm_streak: 0,
            ratio: 1.0,
            first_suspect_ns: None,
        }
    }
}

/// Deterministic phi-accrual detector replica; see the module docs.
#[derive(Debug, Clone)]
pub struct PhiAccrualDetector {
    cfg: DetectorConfig,
    members: Vec<MemberHealth>,
    timeline: Vec<SuspicionSample>,
    transitions: Vec<Transition>,
    /// Detection latencies (first suspect sample → confirmation), ns.
    detection_latencies_ns: Vec<u64>,
}

impl PhiAccrualDetector {
    /// A detector replica for `n` members under `cfg`.
    #[must_use]
    pub fn new(n: usize, cfg: DetectorConfig) -> Self {
        PhiAccrualDetector {
            cfg,
            members: (0..n).map(|_| MemberHealth::new()).collect(),
            timeline: Vec::new(),
            transitions: Vec::new(),
            detection_latencies_ns: Vec::new(),
        }
    }

    /// The configuration this replica runs under.
    #[must_use]
    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// Current health of `member`.
    #[must_use]
    pub fn state(&self, member: usize) -> HealthState {
        self.members[member].state
    }

    /// Latest sample/baseline ratio for `member` — the slowdown
    /// estimate used to derive effective weights (1.0 while healthy or
    /// still learning).
    #[must_use]
    pub fn slow_ratio(&self, member: usize) -> f64 {
        let m = &self.members[member];
        match m.state {
            HealthState::Suspected | HealthState::Degraded => m.ratio.max(1.0),
            _ => 1.0,
        }
    }

    /// True when the member's healthy baseline is frozen.
    #[must_use]
    pub fn baseline_ready(&self, member: usize) -> bool {
        self.members[member].mean.is_some()
    }

    /// Every `(iteration, member, phi, state)` point observed so far.
    #[must_use]
    pub fn timeline(&self) -> &[SuspicionSample] {
        &self.timeline
    }

    /// Every state-machine transition so far, in observation order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Detection latencies (virtual ns from the first suspect sample of
    /// a streak to its `Degraded` confirmation), one per confirmation.
    #[must_use]
    pub fn detection_latencies_ns(&self) -> &[u64] {
        &self.detection_latencies_ns
    }

    /// Forget learned baselines for members that are not currently
    /// degraded or dead. Drivers call this right after applying a new
    /// GEN_BLOCK distribution: a member's share may have crossed a
    /// cache tier, which legitimately changes its per-row time, so the
    /// old baseline would misread the step as a fault. Degraded members
    /// keep their (healthy) baseline — it is the reference that makes
    /// rejoin detection possible.
    pub fn reset_baselines(&mut self) {
        for m in &mut self.members {
            if !matches!(m.state, HealthState::Degraded | HealthState::Dead) {
                m.window.clear();
                m.mean = None;
                m.sigma = 0.0;
                m.suspect_streak = 0;
                m.calm_streak = 0;
                m.first_suspect_ns = None;
            }
        }
    }

    /// Mark `member` crash-stopped (a missed heartbeat: the collective
    /// resolved its slot as `PeerDead`). Absorbing; returns the
    /// transition when the state actually changed.
    pub fn mark_dead(&mut self, member: usize, it: u32, at_ns: u64) -> Option<Transition> {
        let from = self.members[member].state;
        if from == HealthState::Dead {
            return None;
        }
        self.members[member].state = HealthState::Dead;
        let t = Transition {
            member,
            from,
            to: HealthState::Dead,
            at_iteration: it,
            at_ns,
        };
        self.transitions.push(t);
        Some(t)
    }

    /// Absorb one iteration's exchanged progress reports. `samples[i]`
    /// is member `i`'s per-row compute time for the iteration in ns;
    /// non-positive entries mean "no signal this iteration" (the member
    /// held zero rows) and leave that member's model untouched. Returns
    /// the transitions triggered by this observation, in member order —
    /// identical on every replica fed the same vector.
    pub fn observe(&mut self, it: u32, at_ns: u64, samples: &[f64]) -> Vec<Transition> {
        assert_eq!(samples.len(), self.members.len(), "sample vector width");
        let mut out = Vec::new();
        for (member, &x) in samples.iter().enumerate() {
            if self.members[member].state == HealthState::Dead || x <= 0.0 || !x.is_finite() {
                continue;
            }
            if let Some(t) = self.observe_member(member, it, at_ns, x) {
                out.push(t);
            }
        }
        out
    }

    fn observe_member(&mut self, member: usize, it: u32, at_ns: u64, x: f64) -> Option<Transition> {
        let cfg = self.cfg;
        let m = &mut self.members[member];

        // A rejoined member folds back to healthy on its next sample and
        // starts re-learning its baseline at the recovered rate.
        if m.state == HealthState::Rejoined {
            m.state = HealthState::Healthy;
            m.window.clear();
            m.mean = None;
            m.sigma = 0.0;
        }

        let Some(mean) = m.mean else {
            // Learning the healthy baseline: collect, freeze at warmup.
            m.window.push(x);
            if m.window.len() >= cfg.warmup_samples.max(1) {
                let n = m.window.len() as f64;
                let mean = m.window.iter().sum::<f64>() / n;
                let var = m.window.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                m.mean = Some(mean);
                m.sigma = var.sqrt();
            }
            let state = m.state;
            self.timeline.push(SuspicionSample {
                iteration: it,
                at_ns,
                member,
                phi: 0.0,
                ratio: 1.0,
                state,
            });
            return None;
        };

        let sigma = m
            .sigma
            .max(cfg.min_sigma_frac * mean)
            .max(f64::MIN_POSITIVE);
        let phi = phi_level(x, mean, sigma);
        let ratio = x / mean;
        m.ratio = ratio;
        let suspect = phi > cfg.phi_threshold && ratio > cfg.suspect_ratio;

        let from = m.state;
        let mut to = from;
        match from {
            HealthState::Healthy => {
                if suspect {
                    m.suspect_streak = 1;
                    m.first_suspect_ns = Some(at_ns);
                    to = HealthState::Suspected;
                }
            }
            HealthState::Suspected => {
                if suspect {
                    m.suspect_streak += 1;
                    if m.suspect_streak >= cfg.confirm_samples.max(1) {
                        to = HealthState::Degraded;
                        let latency = at_ns.saturating_sub(m.first_suspect_ns.unwrap_or(at_ns));
                        self.detection_latencies_ns.push(latency);
                    }
                } else {
                    m.suspect_streak = 0;
                    m.first_suspect_ns = None;
                    to = HealthState::Healthy;
                }
            }
            HealthState::Degraded => {
                if ratio < cfg.rejoin_ratio {
                    m.calm_streak += 1;
                    if m.calm_streak >= cfg.confirm_samples.max(1) {
                        m.calm_streak = 0;
                        m.suspect_streak = 0;
                        m.first_suspect_ns = None;
                        to = HealthState::Rejoined;
                    }
                } else {
                    m.calm_streak = 0;
                }
            }
            // Dead is filtered in `observe`; Rejoined was folded above.
            HealthState::Dead | HealthState::Rejoined => unreachable!(),
        }
        m.state = to;
        self.timeline.push(SuspicionSample {
            iteration: it,
            at_ns,
            member,
            phi,
            ratio,
            state: to,
        });
        if to != from {
            let t = Transition {
                member,
                from,
                to,
                at_iteration: it,
                at_ns,
            };
            self.transitions.push(t);
            return Some(t);
        }
        None
    }
}

/// Hayashibara's suspicion level: `phi = -log10 P(X >= x)` under
/// `Normal(mean, sigma)`, clamped to `[0, 40]` so downstream arithmetic
/// never meets infinities.
#[must_use]
pub fn phi_level(x: f64, mean: f64, sigma: f64) -> f64 {
    if x <= mean {
        return 0.0;
    }
    let z = (x - mean) / (sigma * std::f64::consts::SQRT_2);
    // P(X >= x) = erfc(z_over_sqrt2) / 2
    let p = 0.5 * erfc(z);
    if p <= 1e-40 {
        40.0
    } else {
        (-p.log10()).clamp(0.0, 40.0)
    }
}

/// Complementary error function via the Abramowitz & Stegun 7.1.26
/// rational approximation (|error| < 1.5e-7), which is plenty for a
/// detector thresholded at whole phi units. `std` has no `erfc`, and
/// the workspace is dependency-free by policy.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(n: usize) -> PhiAccrualDetector {
        PhiAccrualDetector::new(n, DetectorConfig::default())
    }

    /// Feed `iters` iterations of a baseline 100 ns/row signal with a
    /// deterministic ±`jitter` wobble, multiplying member `victim`'s
    /// signal by `factor` from iteration `onset`.
    fn drive(
        det: &mut PhiAccrualDetector,
        n: usize,
        iters: u32,
        jitter: f64,
        victim: usize,
        onset: u32,
        factor: f64,
    ) {
        for it in 0..iters {
            let samples: Vec<f64> = (0..n)
                .map(|m| {
                    let wobble =
                        1.0 + jitter * (((it as usize * 7 + m * 13) % 5) as f64 - 2.0) / 2.0;
                    let f = if m == victim && it >= onset {
                        factor
                    } else {
                        1.0
                    };
                    100.0 * wobble * f
                })
                .collect();
            det.observe(it, u64::from(it) * 1_000, &samples);
        }
    }

    #[test]
    fn fault_free_run_stays_healthy() {
        let mut det = detector(4);
        drive(&mut det, 4, 200, 0.05, 0, u32::MAX, 1.0);
        assert!(det.transitions().is_empty(), "{:?}", det.transitions());
        for m in 0..4 {
            assert_eq!(det.state(m), HealthState::Healthy);
            assert_eq!(det.slow_ratio(m), 1.0);
        }
    }

    #[test]
    fn persistent_slowdown_is_confirmed_quickly() {
        let mut det = detector(4);
        drive(&mut det, 4, 20, 0.02, 2, 8, 4.0);
        assert_eq!(det.state(2), HealthState::Degraded);
        assert!(
            (det.slow_ratio(2) - 4.0).abs() < 0.2,
            "{}",
            det.slow_ratio(2)
        );
        let confirm = det
            .transitions()
            .iter()
            .find(|t| t.to == HealthState::Degraded)
            .expect("must confirm");
        // Suspected at onset, confirmed within confirm_samples more.
        assert!(confirm.at_iteration <= 8 + DetectorConfig::default().confirm_samples);
        assert_eq!(det.detection_latencies_ns().len(), 1);
        // Healthy members are untouched.
        for m in [0, 1, 3] {
            assert_eq!(det.state(m), HealthState::Healthy);
        }
    }

    #[test]
    fn transient_blip_does_not_confirm() {
        let mut det = detector(2);
        let mut state = Vec::new();
        for it in 0..20u32 {
            let f = if it == 10 { 5.0 } else { 1.0 };
            det.observe(it, u64::from(it) * 1_000, &[100.0 * f, 100.0]);
            state.push(det.state(0));
        }
        assert!(state.contains(&HealthState::Suspected), "blip must suspect");
        assert_eq!(det.state(0), HealthState::Healthy, "blip must clear");
        assert!(det.detection_latencies_ns().is_empty());
    }

    #[test]
    fn recovery_rejoins_and_relearns() {
        let mut det = detector(3);
        // Degrade member 1 from iteration 6, recover at iteration 14.
        for it in 0..25u32 {
            let f = if (6..14).contains(&it) { 4.0 } else { 1.0 };
            det.observe(it, u64::from(it) * 1_000, &[100.0, 100.0 * f, 100.0]);
        }
        let seq: Vec<HealthState> = det
            .transitions()
            .iter()
            .filter(|t| t.member == 1)
            .map(|t| t.to)
            .collect();
        assert_eq!(
            seq,
            vec![
                HealthState::Suspected,
                HealthState::Degraded,
                HealthState::Rejoined,
            ],
            "{:?}",
            det.transitions()
        );
        assert_eq!(det.state(1), HealthState::Healthy);
        assert_eq!(det.slow_ratio(1), 1.0);
    }

    #[test]
    fn missed_heartbeat_is_dead_and_absorbing() {
        let mut det = detector(3);
        drive(&mut det, 3, 6, 0.0, 0, u32::MAX, 1.0);
        let t = det.mark_dead(2, 6, 6_000).expect("transition");
        assert_eq!(t.from, HealthState::Healthy);
        assert_eq!(t.to, HealthState::Dead);
        assert!(det.mark_dead(2, 7, 7_000).is_none(), "absorbing");
        // Further samples for a dead member are ignored.
        det.observe(7, 7_000, &[100.0, 100.0, 500.0]);
        assert_eq!(det.state(2), HealthState::Dead);
    }

    #[test]
    fn zero_row_members_produce_no_signal() {
        let mut det = detector(2);
        for it in 0..50u32 {
            det.observe(it, u64::from(it) * 1_000, &[100.0, 0.0]);
        }
        assert_eq!(det.state(1), HealthState::Healthy);
        assert!(!det.baseline_ready(1), "no samples, no baseline");
        assert!(det.baseline_ready(0));
    }

    #[test]
    fn reset_baselines_relearns_after_rebalance() {
        let mut det = detector(2);
        drive(&mut det, 2, 10, 0.0, 0, u32::MAX, 1.0);
        det.reset_baselines();
        assert!(!det.baseline_ready(0));
        // A 2x step right after the reset is absorbed as the new
        // baseline instead of tripping the detector.
        for it in 10..30u32 {
            det.observe(it, u64::from(it) * 1_000, &[200.0, 200.0]);
        }
        assert!(det.transitions().is_empty(), "{:?}", det.transitions());
    }

    #[test]
    fn degraded_members_keep_their_baseline_across_resets() {
        let mut det = detector(2);
        for it in 0..10u32 {
            let f = if it >= 5 { 4.0 } else { 1.0 };
            det.observe(it, u64::from(it) * 1_000, &[100.0 * f, 100.0]);
        }
        assert_eq!(det.state(0), HealthState::Degraded);
        det.reset_baselines();
        assert!(det.baseline_ready(0), "degraded member keeps reference");
        // Recovery is still detected against the original baseline.
        for it in 10..14u32 {
            det.observe(it, u64::from(it) * 1_000, &[100.0, 100.0]);
        }
        assert!(det
            .transitions()
            .iter()
            .any(|t| t.member == 0 && t.to == HealthState::Rejoined));
    }

    #[test]
    fn erfc_matches_known_values() {
        // erfc(0) = 1, erfc(1) ~= 0.157299, erfc(2) ~= 0.004678.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        // Monotone decreasing.
        for i in 0..100 {
            let a = erfc(i as f64 * 0.1);
            let b = erfc((i + 1) as f64 * 0.1);
            assert!(b <= a);
        }
    }

    #[test]
    fn phi_grows_with_deviation_and_clamps() {
        let (mean, sigma) = (100.0, 5.0);
        assert_eq!(phi_level(90.0, mean, sigma), 0.0, "below mean is certain");
        let p1 = phi_level(110.0, mean, sigma);
        let p2 = phi_level(130.0, mean, sigma);
        let p3 = phi_level(1_000.0, mean, sigma);
        assert!(p1 > 0.0 && p2 > p1, "phi must grow: {p1} {p2}");
        assert_eq!(p3, 40.0, "far tail clamps");
    }
}
