//! Cluster-wide application launcher.
//!
//! [`run_app`] is the analogue of `mpirun`: it spawns one thread per
//! rank, builds each rank a [`Comm`] wired to a freshly constructed
//! recorder, runs the application body, and collects results, recorders
//! (instrumentation output), and traces.

use mheta_sim::{run_cluster, ClusterSpec, RankTrace, SimResult, SimTime};

use crate::comm::{Comm, ExecMode};
use crate::hooks::Recorder;

/// Everything a cluster-wide application run produces.
#[derive(Debug)]
pub struct AppRun<T, R> {
    /// Per-rank application return values.
    pub results: Vec<T>,
    /// Per-rank recorders, carrying whatever instrumentation the hook
    /// implementation accumulated.
    pub recorders: Vec<R>,
    /// Per-rank operational traces (empty unless tracing was enabled).
    pub traces: Vec<RankTrace>,
}

impl<T, R> AppRun<T, R> {
    /// The simulated wall time of the run: the last rank's finish time.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.traces
            .iter()
            .map(|t| t.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Options for [`run_app`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Record per-rank operational traces.
    pub tracing: bool,
    /// Execution mode handed to every rank's communicator.
    pub mode: ExecMode,
}

/// Run `body` once per rank of `spec`. `make_recorder` constructs each
/// rank's hook sink (use [`crate::hooks::NullRecorder`] for production
/// runs, `mheta-core`'s profile recorder for the instrumented
/// iteration).
pub fn run_app<T, R, MR, F>(
    spec: &ClusterSpec,
    opts: RunOptions,
    make_recorder: MR,
    body: F,
) -> SimResult<AppRun<T, R>>
where
    T: Send,
    R: Recorder + 'static,
    MR: Fn(usize) -> R + Sync,
    F: Fn(&mut Comm<'_, R>) -> SimResult<T> + Sync,
{
    let run = run_cluster(spec, opts.tracing, |ctx| {
        let mut rec = make_recorder(ctx.rank());
        let value = {
            let mut comm = Comm::new(ctx, &mut rec, opts.mode);
            body(&mut comm)?
        };
        Ok((value, rec))
    })?;
    let mut results = Vec::with_capacity(run.results.len());
    let mut recorders = Vec::with_capacity(run.results.len());
    for (value, rec) in run.results {
        results.push(value);
        recorders.push(rec);
    }
    Ok(AppRun {
        results,
        recorders,
        traces: run.traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, ReduceOp};
    use crate::hooks::{HookEvent, VecRecorder};
    use mheta_sim::ClusterSpec;

    #[test]
    fn run_app_collects_results_and_recorders() {
        let mut spec = ClusterSpec::homogeneous(4);
        spec.noise.amplitude = 0.0;
        let run = run_app(
            &spec,
            RunOptions::default(),
            |_rank| VecRecorder::default(),
            |comm| {
                comm.begin_section(0);
                let mut v = vec![comm.rank() as f64];
                allreduce(comm, ReduceOp::Sum, &mut v)?;
                comm.end_section(0);
                Ok(v[0])
            },
        )
        .unwrap();
        assert_eq!(run.results, vec![6.0; 4]);
        for rec in &run.recorders {
            // Every rank saw at least section enter/exit plus some ops.
            assert!(rec.events.len() >= 3);
            assert!(rec.events.iter().any(|e| matches!(e, HookEvent::Op { .. })));
        }
    }

    #[test]
    fn makespan_positive_and_deterministic() {
        let spec = ClusterSpec::homogeneous(3);
        let go = || {
            run_app(
                &spec,
                RunOptions::default(),
                |_| crate::hooks::NullRecorder,
                |comm| {
                    comm.compute(1000.0, u64::MAX);
                    Ok(())
                },
            )
            .unwrap()
            .makespan()
        };
        let a = go();
        let b = go();
        assert_eq!(a, b);
        assert!(a.as_secs_f64() > 0.0);
    }
}
