//! The pipelined RNA benchmark: multi-tile parallel sections, Eq. 4's
//! tile recurrence, and why pipelined applications are the most
//! distribution-sensitive (the paper's worst/best gap of ~4x was RNA).
//!
//! ```text
//! cargo run --release --example pipeline_rna
//! ```

use mheta::prelude::*;

fn main() {
    let spec = presets::dc(); // heterogeneous CPUs, ample memory
    let bench = Benchmark::Rna(Rna::default());
    let iters = 6;

    println!(
        "RNA wavefront DP, {} tiles per section, on {} (CPU powers {:?})\n",
        8,
        spec.name,
        spec.nodes.iter().map(|n| n.cpu_power).collect::<Vec<_>>()
    );

    let model = build_model(&bench, &spec, false).expect("model");
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::full(&inputs);

    // Sweep the Bal <-> Blk leg: on DC this is where everything happens.
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "distribution", "predicted", "actual", "diff"
    );
    let mut best: Option<(f64, GenBlock)> = None;
    let mut worst: Option<(f64, GenBlock)> = None;
    for k in 0..=8 {
        let t = 0.75 + 0.25 * f64::from(k) / 8.0; // Bal -> Blk
        let dist = path.at(t);
        let predicted = model.predict(dist.rows()).expect("predict").app_secs(iters);
        let actual = run_measured(&bench, &spec, &dist, iters, false)
            .expect("run")
            .secs;
        println!(
            "{:<12} {:>11.2}s {:>11.2}s {:>7.2}%",
            format!("t={t:.3}"),
            predicted,
            actual,
            percent_difference(predicted, actual)
        );
        if best.as_ref().is_none_or(|(b, _)| actual < *b) {
            best = Some((actual, dist.clone()));
        }
        if worst.as_ref().is_none_or(|(w, _)| actual > *w) {
            worst = Some((actual, dist));
        }
    }

    let (best_t, best_d) = best.expect("nonempty sweep");
    let (worst_t, worst_d) = worst.expect("nonempty sweep");
    println!("\nbest  {best_t:.2}s with {best_d}");
    println!("worst {worst_t:.2}s with {worst_d}");
    println!(
        "distribution choice is worth {:.2}x on this architecture — a wrong guess",
        worst_t / best_t
    );
    println!("costs real time, which is why the model-driven search matters (§5.3).");
}
