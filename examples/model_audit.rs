//! Error attribution: *where* does the model's prediction error come
//! from when the distribution is wrong for the cluster?
//!
//! We run Jacobi on the heterogeneous HY1 preset twice — once with a
//! sensible Block distribution, once with a deliberately bad one that
//! dumps most of the rows on the weakest node — and audit both
//! predictions against the simulated runs. The audit aligns each model
//! term (compute, disk, prefetch, comm overhead, neighbor wait,
//! collective) with the simulator's actual timeline and prints the
//! signed per-term residual; the terms partition the total residual
//! exactly, so the top terms *are* the explanation.
//!
//! ```text
//! cargo run --release --example model_audit
//! ```

use mheta::obs::AuditReport;
use mheta::prelude::*;

fn audit_one(label: &str, bench: &Benchmark, spec: &ClusterSpec, blk: &GenBlock, iters: u32) {
    let model = build_model(bench, spec, false).expect("model assembly");
    let pred = model.predict(blk.rows()).expect("prediction");
    let obs = run_observed(bench, spec, blk, iters, false).expect("observed run");
    let report = AuditReport::audit(&pred, iters, &obs.traces, &obs.windows);

    println!("== {label}: rows {:?}", blk.rows());
    println!(
        "   predicted {:.3}s  actual {:.3}s  ({:+.2}% residual {:+.3} ms)",
        pred.app_secs(iters),
        obs.measured.secs,
        percent_difference(pred.app_secs(iters), obs.measured.secs),
        report.total_residual_ns() / 1e6,
    );
    println!("   top error-attribution terms:");
    for (term, residual_ns) in report.top_terms(3) {
        let side = if residual_ns >= 0.0 {
            "model over-predicts"
        } else {
            "model under-predicts"
        };
        println!("     {term:<17} {:+10.3} ms  ({side})", residual_ns / 1e6);
    }
    println!();
}

fn main() {
    let spec = presets::hy1();
    let bench = Benchmark::Jacobi(Jacobi::default());
    let iters = 4;
    let total = bench.total_rows();
    let n = spec.len();

    // A sensible distribution, and one that overloads the weakest node.
    let good = GenBlock::block(total, n);
    let mut weights = vec![1.0; n];
    let weakest = spec
        .nodes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cpu_power.total_cmp(&b.1.cpu_power))
        .map(|(i, _)| i)
        .unwrap_or(0);
    weights[weakest] = 20.0;
    let bad = GenBlock::apportion(total, &weights);

    println!(
        "error attribution for {} on {} ({iters} iterations)\n",
        bench.name(),
        spec.name
    );
    audit_one("Block (sensible)", &bench, &spec, &good, iters);
    audit_one(
        "overloaded weakest node (deliberately bad)",
        &bench,
        &spec,
        &bad,
        iters,
    );

    println!("The audit's terms partition the residual exactly; see");
    println!("EXPERIMENTS.md for the full per-rank table and bench_suite gate.");
}
