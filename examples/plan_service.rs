//! Use the planning service in process: cache hits, single-flight
//! coalescing, and admission control around the portfolio search.
//!
//! ```text
//! cargo run --release --example plan_service
//! ```

use std::sync::{Arc, Barrier};

use mheta::prelude::*;
use mheta::serve::PlanError;

fn main() {
    let planner = Arc::new(Planner::new(PlannerConfig::default()));
    let req = PlanRequest {
        bench: Benchmark::Jacobi(Jacobi::small()),
        prefetch: false,
        spec: presets::dc(),
        search: SearchParams {
            max_evals_per_strategy: 64,
            ..SearchParams::default()
        },
    };

    // First request: a fresh portfolio search.
    let fresh = planner.plan(&req).expect("plan");
    println!(
        "fresh:     {:>9} rows={:?} predicted={:.3}ms winner={} ({} evals)",
        fresh.source.name(),
        fresh.plan.rows,
        fresh.plan.predicted_ns / 1e6,
        fresh.plan.winner.name(),
        fresh.plan.total_evals,
    );

    // Same request again: served from the plan cache, bit-identical.
    let cached = planner.plan(&req).expect("plan");
    assert_eq!(cached.plan, fresh.plan);
    println!(
        "repeat:    {:>9} (bitwise-identical to the fresh search)",
        cached.source.name()
    );

    // A concurrent burst of one *new* request coalesces onto one search.
    planner.invalidate_cache();
    let burst = 6;
    let barrier = Arc::new(Barrier::new(burst));
    let searches_before = planner.metrics().searches();
    std::thread::scope(|s| {
        for _ in 0..burst {
            let planner = Arc::clone(&planner);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            s.spawn(move || {
                barrier.wait();
                planner.plan(&req).expect("plan");
            });
        }
    });
    println!(
        "burst:     {burst} concurrent identical requests -> {} search(es)",
        planner.metrics().searches() - searches_before
    );

    // Overload: a zero-capacity queue sheds with a structured error.
    let overloaded = Planner::new(PlannerConfig {
        queue_capacity: 0,
        cache_enabled: false,
        coalesce_enabled: false,
        ..PlannerConfig::default()
    });
    match overloaded.plan(&req) {
        Err(PlanError::Overloaded { retry_after_ms }) => {
            println!("overload:  shed with retry_after_ms={retry_after_ms}");
        }
        other => panic!("expected a shed, got {other:?}"),
    }

    println!("\nservice stats:\n{}", planner.stats().to_json_pretty());

    // Telemetry: every request above ran under a trace; the flight
    // recorder kept its lifecycle and the planner renders a
    // Prometheus scrape on demand.
    let dump = planner.flight_dump();
    println!(
        "\nflight recorder: {} events retained ({} written, {} dropped)",
        dump.get("retained").and_then(|v| v.as_u64()).unwrap_or(0),
        dump.get("written").and_then(|v| v.as_u64()).unwrap_or(0),
        dump.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0),
    );
    let prom = planner.prometheus();
    println!(
        "prometheus exposition ({} lines), e.g.:",
        prom.lines().count()
    );
    for line in prom
        .lines()
        .filter(|l| l.starts_with("mheta_serve_requests_total"))
    {
        println!("  {line}");
    }
}
