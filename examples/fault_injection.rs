//! Fault injection end to end: deterministic fault schedules, the
//! retry/backoff I/O layer, fault visibility in traces and hooks,
//! degradation of MHETA's accuracy under rising fault rates, and
//! searches that tolerate failing evaluations.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use std::cell::Cell;

use mheta::dist::{random_search, EvalError, Evaluator, FallibleFn, RandomConfig};
use mheta::mpi::{
    run_app, ExecMode, HookEvent, NullRecorder, RetryPolicy, RunOptions, VecRecorder,
};
use mheta::prelude::*;
use mheta::sim::{FaultKind, FaultSpec, SimError};

fn main() {
    let mut spec = ClusterSpec::homogeneous(4);
    spec.noise.amplitude = 0.0;
    spec.seed = 7;
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let iters = 4;

    // ---- 1. Faults cost time but never correctness. -----------------
    let clean = run_measured(&bench, &spec, &dist, iters, false).expect("clean run");
    let mut faulty_spec = spec.clone();
    faulty_spec.faults = presets::standard_fault_profile();
    let faulty = run_measured(&bench, &faulty_spec, &dist, iters, false).expect("faulty run");
    println!("Jacobi under the standard fault profile:");
    println!("  clean : {:>9.6} s  check {:e}", clean.secs, clean.check);
    println!("  faulty: {:>9.6} s  check {:e}", faulty.secs, faulty.check);
    assert_eq!(clean.check, faulty.check, "retries must hide every fault");
    assert!(faulty.secs > clean.secs);
    println!(
        "  -> identical numerics, +{:.1}% virtual time\n",
        100.0 * (faulty.secs - clean.secs) / clean.secs
    );

    // ---- 2. Every injected fault is visible in traces and hooks. ----
    let mut io_spec = spec.clone();
    io_spec.faults = FaultSpec {
        disk_read_fault_rate: 0.25,
        disk_write_fault_rate: 0.15,
        msg_resend_rate: 0.25,
        slowdown_rate: 0.40,
        slowdown_factor: 1.5,
        slowdown_period_ns: 1.0e4,
        ..FaultSpec::default()
    };
    let run = run_app(
        &io_spec,
        RunOptions {
            tracing: true,
            mode: ExecMode::Normal,
        },
        |_| VecRecorder::default(),
        |comm| {
            comm.set_retry_policy(RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            });
            let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
            comm.ctx().disk.create(1, data.len());
            for round in 0..12u32 {
                comm.file_write(1, 0, &data)?;
                let mut out = vec![0.0; 256];
                comm.file_read(1, 0, &mut out)?;
                comm.compute(2_000.0, u64::MAX);
                let to = (comm.rank() + 1) % comm.size();
                let from = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send_f64s(to, round, &data[..32])?;
                let _ = comm.recv_f64s(from, round)?;
            }
            Ok(())
        },
    )
    .expect("faulty I/O app");

    let faults: Vec<FaultKind> = run.traces.iter().flat_map(|t| t.faults()).collect();
    let count = |p: fn(&FaultKind) -> bool| faults.iter().filter(|f| p(f)).count();
    let retries: usize = run
        .recorders
        .iter()
        .map(|r| {
            r.events
                .iter()
                .filter(|e| matches!(e, HookEvent::Retry { .. }))
                .count()
        })
        .sum();
    println!("fault events recorded in the rank traces:");
    println!(
        "  read faults {}, write faults {}, resends {}, slowdowns {}",
        count(|f| matches!(f, FaultKind::ReadFault { .. })),
        count(|f| matches!(f, FaultKind::WriteFault { .. })),
        count(|f| matches!(f, FaultKind::MessageResend { .. })),
        count(|f| matches!(f, FaultKind::Slowdown { .. })),
    );
    println!("  retry hook events observed by the MPI-Jack layer: {retries}\n");

    // ---- 3. Exhausted retries surface a typed error. ----------------
    let mut hostile = spec.clone();
    hostile.faults.disk_read_fault_rate = 0.97;
    let err = run_app(
        &hostile,
        RunOptions::default(),
        |_| NullRecorder,
        |comm| {
            comm.set_retry_policy(RetryPolicy::none());
            comm.ctx().disk.create(5, 8);
            comm.file_write(5, 0, &[1.0; 8])?;
            let mut out = [0.0; 8];
            comm.file_read(5, 0, &mut out)?;
            Ok(())
        },
    )
    .expect_err("no retries + 97% fault rate must fail");
    assert!(matches!(err, SimError::TransientIo { .. }));
    println!("with RetryPolicy::none() the app fails loudly:\n  {err}\n");

    // ---- 4. Model error degrades smoothly with the fault rate. ------
    let model = build_model(&bench, &spec, false).expect("model");
    let predicted = model.predict(dist.rows()).expect("predict").app_secs(iters);
    println!("prediction error vs background slowdown rate:");
    for rate in [0.0, 0.15, 0.30, 0.45] {
        let mut s = spec.clone();
        s.faults.slowdown_rate = rate;
        s.faults.slowdown_factor = 1.6;
        s.faults.slowdown_period_ns = 1.0e5;
        let actual = run_measured(&bench, &s, &dist, iters, false)
            .expect("run")
            .secs;
        println!(
            "  rate {:>4.2}: actual {:>9.6} s, error {:>5.1}%",
            rate,
            actual,
            percent_difference(predicted, actual)
        );
    }
    println!();

    // ---- 5. Searches tolerate failing evaluations. ------------------
    let calls = Cell::new(0usize);
    let flaky = FallibleFn(|rows: &[usize]| {
        calls.set(calls.get() + 1);
        if calls.get().is_multiple_of(5) {
            Err(EvalError("injected model failure".into()))
        } else {
            model.try_eval_ns(rows)
        }
    });
    let out = random_search(
        bench.total_rows(),
        4,
        &flaky,
        RandomConfig {
            max_evals: 60,
            ..Default::default()
        },
    );
    println!("random search with a 20% evaluator failure rate:");
    println!(
        "  {} evals, {} failed, best {:.3} ms",
        out.evaluations,
        out.failed_evals,
        out.score_ns / 1.0e6
    );
    calls.set(0);
    let out = random_search(
        bench.total_rows(),
        4,
        &flaky,
        RandomConfig {
            max_evals: 60,
            eval_retries: 2,
            ..Default::default()
        },
    );
    println!(
        "  with eval_retries = 2: {} failed, {} retried",
        out.failed_evals, out.retried_evals
    );
}
