//! Quickstart: build a MHETA model for Jacobi iteration on one of the
//! paper's hybrid architectures, predict a few distributions, and
//! check the predictions against the simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mheta::prelude::*;

fn main() {
    // One of the paper's Table 1 architectures: four nodes with varying
    // CPU power, four with low I/O latency and small memories.
    let spec = presets::hy1();
    let bench = Benchmark::Jacobi(Jacobi::default());
    let iters = 10;

    println!(
        "building the MHETA model for {} on {}...",
        bench.name(),
        spec.name
    );
    println!("  (microbenchmarks + one instrumented iteration under Blk)");
    let model = build_model(&bench, &spec, false).expect("model assembly");

    // The four anchor distributions of the paper's Figure 8.
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::full(&inputs);

    println!(
        "\n{:<10} {:>12} {:>12} {:>8}   distribution",
        "anchor", "predicted", "actual", "diff"
    );
    for (label, dist) in path.anchors() {
        let predicted = model
            .predict(dist.rows())
            .expect("valid dist")
            .app_secs(iters);
        let actual = run_measured(&bench, &spec, dist, iters, false)
            .expect("run")
            .secs;
        println!(
            "{:<10} {:>11.3}s {:>11.3}s {:>7.2}%   {}",
            label,
            predicted,
            actual,
            percent_difference(predicted, actual),
            dist
        );
    }

    // Evaluate one hand-rolled distribution.
    let custom = GenBlock::new(vec![120, 130, 150, 180, 47, 47, 47, 47]).expect("valid");
    let p = model.predict(custom.rows()).expect("valid dist");
    println!(
        "\ncustom {} -> predicted {:.3}s per app run ({} iterations)",
        custom,
        p.app_secs(iters),
        iters
    );
    println!(
        "slowest node breakdown: compute {:.1}ms, I/O {:.1}ms, comm {:.1}ms per iteration",
        p.breakdown[0].compute_ns / 1e6,
        p.breakdown[0].io_ns / 1e6,
        p.breakdown[0].comm_ns / 1e6
    );
}
