//! The adaptive resilience layer, end to end: Jacobi on the Table 1
//! **DC** preset with the phi-accrual failure detector and mid-run
//! `GEN_BLOCK` rebalancing enabled, under one of four fault scenarios:
//!
//! * `degrade` — a baseline node slows down 4× mid-run; the detector
//!   disambiguates the slowdown from a crash, confirms it, and the
//!   online policy sheds rows off the degraded node;
//! * `crash` — a rank dies; the survivors roll back, and the
//!   redistribution weights are corrected by any observed slowdowns;
//! * `rejoin` — the degraded node later recovers; the detector notices
//!   the drift back and the policy hands rows back;
//! * `spare` — a zero-row hot spare idles in the communicator until a
//!   degradation makes enlisting it worthwhile.
//!
//! ```text
//! cargo run --release --example adaptive_rebalance -- degrade
//! cargo run --release --example adaptive_rebalance -- rejoin --telemetry
//! ```
//!
//! Set `MHETA_SEED` to vary the noise seed (CI's chaos leg runs a
//! scenario × seed matrix). With `--telemetry`, the run writes
//! `target/adaptive_<scenario>.perfetto.json` (suspicion counter
//! tracks + dedicated rebalance track; open in ui.perfetto.dev) and
//! `target/adaptive_<scenario>.metrics.json` (detector counters,
//! detection-latency histogram, rebalance totals).

use mheta::apps::{run_adaptive, AdaptiveConfig, AdaptiveRun, Jacobi};
use mheta::obs::{perfetto_json_adaptive, Metrics};
use mheta::prelude::*;
use mheta::sim::{DegradeSpec, RecoverSpec};

const DEGRADED_RANK: usize = 3;
const CRASHED_RANK: usize = 5;
const ITERS: u32 = 40;

fn static_cfg() -> AdaptiveConfig {
    let mut cfg = AdaptiveConfig::default();
    cfg.detector.phi_threshold = f64::INFINITY;
    cfg
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = argv.iter().any(|a| a == "--telemetry");
    let scenario = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("degrade", String::as_str)
        .to_string();

    let app = Jacobi {
        rows: 128,
        cols: 16,
        seed: 0x4a43,
    };
    let mut spec = presets::dc();
    if let Some(seed) = std::env::var("MHETA_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        spec.seed = seed;
    }
    let powers: Vec<f64> = spec.nodes.iter().map(|n| n.cpu_power).collect();
    let mut layout0 = GenBlock::apportion(app.rows, &powers).rows().to_vec();

    match scenario.as_str() {
        "degrade" => {
            spec.faults
                .degrades
                .push(DegradeSpec::at_iteration(DEGRADED_RANK, 6, 4.0));
        }
        "crash" => {
            spec = presets::with_crash(spec, CRASHED_RANK, 20, 4);
        }
        "rejoin" => {
            spec.faults.degrades.push(
                DegradeSpec::at_iteration(DEGRADED_RANK, 6, 4.0)
                    .recovering(RecoverSpec::at_iteration(22)),
            );
        }
        "spare" => {
            // Node 7 starts as an idle hot spare: its rows go to the
            // others, and only a detected degradation enlists it.
            let enlisted = GenBlock::apportion(app.rows, &powers[..7]).rows().to_vec();
            layout0 = enlisted;
            layout0.push(0);
            spec.faults
                .degrades
                .push(DegradeSpec::at_iteration(DEGRADED_RANK, 6, 4.0));
        }
        other => {
            eprintln!("unknown scenario {other:?}: use degrade | crash | rejoin | spare");
            std::process::exit(2);
        }
    }

    println!(
        "scenario {scenario} on {} (seed {}): {} rows over {} nodes, {ITERS} iterations",
        spec.name,
        spec.seed,
        app.rows,
        spec.len()
    );

    let run = run_adaptive(&app, &spec, &layout0, ITERS, AdaptiveConfig::default())
        .expect("adaptive run failed");
    let baseline = run_adaptive(&app, &spec, &layout0, ITERS, static_cfg())
        .expect("static baseline run failed");
    report(&run, &baseline, &layout0);

    if telemetry {
        write_telemetry(&scenario, &run);
    }

    // CI's chaos leg runs this across scenarios × seeds: each scenario
    // asserts the adaptation it exists to demonstrate.
    let view = run
        .outcomes
        .iter()
        .find(|o| o.alive)
        .expect("survivors exist");
    match scenario.as_str() {
        "degrade" => {
            assert!(!view.rebalances.is_empty(), "no rebalance committed");
            assert!(
                view.final_rows[DEGRADED_RANK] < layout0[DEGRADED_RANK],
                "degraded rank kept its rows"
            );
            assert!(
                run.measured.secs < baseline.measured.secs,
                "adaptation did not pay for itself"
            );
        }
        "crash" => {
            assert_eq!(view.dead, vec![CRASHED_RANK], "crash not detected");
            assert_eq!(view.final_rows[CRASHED_RANK], 0, "dead rank kept rows");
        }
        "rejoin" => {
            assert!(
                view.transitions.iter().any(|t| t.to.name() == "rejoined"),
                "no rejoin detected"
            );
            assert!(view.rebalances.len() >= 2, "rows never handed back");
        }
        "spare" => {
            assert!(
                view.final_rows[7] > 0,
                "hot spare never enlisted: {:?}",
                view.final_rows
            );
        }
        _ => unreachable!(),
    }
    println!("scenario {scenario}: OK");
}

fn report(run: &AdaptiveRun, baseline: &AdaptiveRun, layout0: &[usize]) {
    let view = run
        .outcomes
        .iter()
        .find(|o| o.alive)
        .expect("survivors exist");
    for t in &view.transitions {
        println!(
            "  it {:>3}  rank {}  {} -> {}",
            t.at_iteration,
            t.member,
            t.from.name(),
            t.to.name()
        );
    }
    for rb in &view.rebalances {
        println!(
            "  it {:>3}  rebalance: {} rows moved in {} evals (predicted gain {:.1}%)  {:?} -> {:?}",
            rb.iteration,
            rb.rows_moved,
            rb.evals,
            100.0 * rb.predicted_gain,
            rb.from_rows,
            rb.to_rows
        );
    }
    for (i, ns) in view.detection_latencies_ns.iter().enumerate() {
        println!("  detection latency #{i}: {:.3} ms", *ns as f64 / 1e6);
    }
    if !view.dead.is_empty() {
        println!("  dead ranks: {:?}", view.dead);
    }
    println!("  rows {:?} -> {:?}", layout0, view.final_rows);
    println!(
        "  makespan {:.3}s adaptive vs {:.3}s static ({:+.1}%)",
        run.measured.secs,
        baseline.measured.secs,
        100.0 * (run.measured.secs - baseline.measured.secs) / baseline.measured.secs
    );
}

fn write_telemetry(scenario: &str, run: &AdaptiveRun) {
    let spans: Vec<Vec<RecoverySpan>> = run.outcomes.iter().map(|o| o.spans.clone()).collect();
    let suspicion: Vec<_> = run.outcomes.iter().map(|o| o.suspicion.clone()).collect();
    let trace_path = format!("target/adaptive_{scenario}.perfetto.json");
    std::fs::write(
        &trace_path,
        perfetto_json_adaptive(&run.traces, &run.hooks, &spans, &suspicion),
    )
    .expect("write perfetto trace");
    println!("wrote {trace_path}");

    let view = run
        .outcomes
        .iter()
        .find(|o| o.alive)
        .expect("survivors exist");
    let mut metrics = Metrics::from_traces(&run.traces);
    metrics.record_recovery(&view.dead, &spans);
    metrics.record_detector(&view.transitions, &view.detection_latencies_ns);
    for rb in &view.rebalances {
        metrics.record_rebalance(rb.rows_moved as u64, u64::from(rb.evals));
    }
    let metrics_path = format!("target/adaptive_{scenario}.metrics.json");
    std::fs::write(&metrics_path, metrics.to_json_pretty()).expect("write metrics");
    println!("wrote {metrics_path}");
}
