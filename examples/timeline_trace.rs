//! Visualize a traced run: a plain-text Gantt timeline of what every
//! rank spent its virtual time on — the pipeline fill of RNA's
//! wavefront and the I/O phases of out-of-core Jacobi are plainly
//! visible.
//!
//! ```text
//! cargo run --release --example timeline_trace
//! ```

use mheta::mpi::{run_app, ExecMode, NullRecorder, RunOptions};
use mheta::prelude::*;
use mheta::sim::render_timeline;

fn main() {
    // --- RNA: watch the pipeline fill ------------------------------------
    let mut spec = ClusterSpec::homogeneous(6);
    spec.noise.amplitude = 0.0;
    let rna = Rna {
        rows: 96,
        cols: 64,
        tiles: 8,
        seed: 0x52,
    };
    let dist = GenBlock::block(rna.rows, 6);
    let run = run_app(
        &spec,
        RunOptions {
            tracing: true,
            mode: ExecMode::Normal,
        },
        |_| NullRecorder,
        |comm| rna.run(comm, &dist, 1),
    )
    .expect("rna run");
    println!("RNA wavefront, one iteration, 8 tiles over 6 ranks:");
    println!("(the staircase is the pipeline filling — Eq. 4's tile recurrence)\n");
    print!("{}", render_timeline(&run.traces, 100));

    // --- Jacobi: in-core vs out-of-core nodes ------------------------------
    let mut spec = ClusterSpec::homogeneous(4);
    spec.noise.amplitude = 0.0;
    spec.nodes[2].memory_bytes = 3 * 1024;
    spec.nodes[3].memory_bytes = 3 * 1024;
    let jacobi = Jacobi::small();
    let dist = GenBlock::block(jacobi.rows, 4);
    let run = run_app(
        &spec,
        RunOptions {
            tracing: true,
            mode: ExecMode::Normal,
        },
        |_| NullRecorder,
        |comm| jacobi.run(comm, &dist, 2, false),
    )
    .expect("jacobi run");
    println!("\nJacobi, two iterations; ranks 2-3 are memory-starved (out of core):");
    println!("(D/W stripes are their ICLA streaming; ranks 0-1 idle-wait at the reduction)\n");
    print!("{}", render_timeline(&run.traces, 100));
}
