//! Use MHETA as the evaluation function inside the four distribution
//! search algorithms of the companion work — the system the paper
//! positions MHETA for ("an effective tool when searching for the most
//! effective distribution on a heterogeneous cluster").
//!
//! ```text
//! cargo run --release --example distribution_search
//! ```

use mheta::dist::{
    gbs_search, genetic_search, random_search, simulated_annealing, AnnealingConfig, GbsConfig,
    GeneticConfig, RandomConfig,
};
use mheta::prelude::*;

fn main() {
    let spec = presets::io();
    let bench = Benchmark::Cg(Cg::default());
    let iters = 6;

    println!(
        "searching distributions for {} on {}...",
        bench.name(),
        spec.name
    );
    let model = build_model(&bench, &spec, false).expect("model assembly");
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let total = bench.total_rows();
    let n = spec.len();
    let blk = GenBlock::block(total, n);

    let baseline = run_measured(&bench, &spec, &blk, iters, false)
        .expect("baseline run")
        .secs;
    println!("baseline Blk actually runs in {baseline:.2}s\n");

    let outcomes = [
        (
            "GBS (spectrum)",
            gbs_search(&path, &model, GbsConfig::default()),
        ),
        (
            "genetic",
            genetic_search(
                total,
                n,
                std::slice::from_ref(&blk),
                &model,
                GeneticConfig::default(),
            ),
        ),
        (
            "simulated annealing",
            simulated_annealing(&blk, &model, AnnealingConfig::default()),
        ),
        (
            "random",
            random_search(total, n, &model, RandomConfig::default()),
        ),
    ];

    println!(
        "{:<20} {:>6} {:>12} {:>12} {:>9}",
        "algorithm", "evals", "predicted", "actual", "speedup"
    );
    for (name, outcome) in outcomes {
        let actual = run_measured(&bench, &spec, &outcome.best, iters, false)
            .expect("candidate run")
            .secs;
        println!(
            "{:<20} {:>6} {:>11.2}s {:>11.2}s {:>8.2}x",
            name,
            outcome.evaluations,
            outcome.score_ns * f64::from(iters) / 1e9,
            actual,
            baseline / actual
        );
    }
}
