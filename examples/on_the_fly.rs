//! "On the fly" redistribution — the runtime the paper sketches in §6:
//! start under the default Block distribution, use MHETA + GBS to find
//! a better one in a handful of evaluations, check that the predicted
//! savings over the remaining iterations beat the predicted cost of
//! moving the data, then actually move it and finish faster.
//!
//! ```text
//! cargo run --release --example on_the_fly
//! ```

use mheta::apps::jacobi::VAR_U;
use mheta::apps::redistribute_var;
use mheta::dist::{gbs_search, predict_cost_ns, switch_benefit_ns, GbsConfig};
use mheta::mpi::{run_app, ExecMode, NullRecorder, RunOptions};
use mheta::prelude::*;

fn main() {
    let spec = presets::io(); // half the nodes memory-starved
    let app = Jacobi::default();
    let bench = Benchmark::Jacobi(app.clone());
    let total_iters = 60u32;
    let switch_after = 6u32;

    println!(
        "Jacobi on {}, {} iterations total.\n",
        spec.name, total_iters
    );

    // -- The runtime's decision procedure ---------------------------------
    let model = build_model(&bench, &spec, false).expect("model");
    let blk = GenBlock::block(app.rows, spec.len());
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let found = gbs_search(&path, &model, GbsConfig::default());
    println!(
        "GBS found {} in {} MHETA evaluations (predicted {:.0}ms/iter vs Blk {:.0}ms/iter)",
        found.best,
        found.evaluations,
        found.score_ns / 1e6,
        model.predict(blk.rows()).expect("blk").iteration_ns / 1e6
    );

    let remaining = total_iters - switch_after;
    let move_cost = predict_cost_ns(&model, &blk, &found.best);
    let benefit = switch_benefit_ns(&model, &blk, &found.best, remaining);
    println!(
        "predicted redistribution cost {:.1}ms; net benefit over {} remaining iterations {:+.2}s",
        move_cost / 1e6,
        remaining,
        benefit / 1e9
    );
    assert!(benefit > 0.0, "the runtime would decline this switch");

    // -- Execute both plans ------------------------------------------------
    let stay = run_measured(&bench, &spec, &blk, total_iters, false)
        .expect("baseline")
        .secs;

    // Switching plan: phase 1 under Blk, redistribute (measured for real
    // over the grid variable), phase 2 under the found distribution.
    let phase1 = run_measured(&bench, &spec, &blk, switch_after, false)
        .expect("phase 1")
        .secs;
    let cols = app.cols;
    let move_run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| NullRecorder,
        |comm| {
            let m = blk.rows()[comm.rank()];
            comm.ctx().disk.create(VAR_U, m * cols);
            redistribute_var(comm, VAR_U, cols, &blk, &found.best)
        },
    )
    .expect("redistribution");
    let moved = move_run
        .results
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max);
    let phase2 = run_measured(&bench, &spec, &found.best, remaining, false)
        .expect("phase 2")
        .secs;
    let switched = phase1 + moved + phase2;

    println!("\nstay on Blk the whole run:        {stay:8.2}s");
    println!(
        "switch after {switch_after} iterations:        {switched:8.2}s  ({phase1:.2}s + {moved:.3}s move + {phase2:.2}s)"
    );
    println!(
        "actual redistribution cost {:.1}ms (predicted {:.1}ms)",
        moved * 1e3,
        move_cost / 1e6
    );
    println!(
        "\nswitching wins by {:.2}s ({:.2}x) — the §6 runtime in action.",
        stay - switched,
        stay / switched
    );
}
