//! End-to-end tour of the observability layer (`mheta-obs`):
//!
//! 1. run out-of-core Jacobi on a heterogeneous cluster with tracing
//!    and MPI-Jack hooks enabled,
//! 2. print the per-rank virtual-time breakdown (metrics),
//! 3. reconstruct the cross-rank critical path and report what the
//!    makespan was actually spent on,
//! 4. export the run as Chrome trace-event JSON — open
//!    `target/observability.perfetto.json` in <https://ui.perfetto.dev>,
//! 5. run a distribution search and dump its convergence curve.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use mheta::dist::{random_search, RandomConfig};
use mheta::obs::{perfetto_json, telemetry, CriticalPath, Metrics};
use mheta::prelude::*;

fn main() {
    // A heterogeneous cluster: ranks 2-3 are memory-starved, so they
    // stream their grid from disk while ranks 0-1 stay in core.
    let mut spec = ClusterSpec::homogeneous(4);
    spec.noise.amplitude = 0.0;
    spec.nodes[2].memory_bytes = 3 * 1024;
    spec.nodes[3].memory_bytes = 3 * 1024;

    let jacobi = Jacobi::small();
    let bench = Benchmark::Jacobi(jacobi.clone());
    let dist = GenBlock::block(jacobi.rows, 4);
    let run = run_observed(&bench, &spec, &dist, 3, false).expect("jacobi run");

    // --- Metrics: where did each rank's virtual time go? -------------------
    let metrics = Metrics::from_traces(&run.traces);
    println!("Per-rank virtual-time breakdown (3 Jacobi iterations):\n");
    print!("{}", metrics.utilization_table());

    // --- Critical path: what decided the makespan? -------------------------
    let path = CriticalPath::compute(&run.traces);
    println!("\n{}", path.report());
    assert_eq!(
        path.total_ns(),
        path.makespan.as_nanos(),
        "segments partition the makespan exactly"
    );

    // --- Perfetto export ---------------------------------------------------
    let json = perfetto_json(&run.traces, &run.hooks);
    std::fs::create_dir_all("target").expect("target dir");
    let out = "target/observability.perfetto.json";
    std::fs::write(out, &json).expect("write trace");
    println!(
        "wrote {out} ({} KiB) — load it in https://ui.perfetto.dev",
        json.len() / 1024
    );

    // --- Search telemetry --------------------------------------------------
    let model = build_model(&bench, &spec, false).expect("model");
    let outcome = random_search(
        jacobi.rows,
        4,
        &model,
        RandomConfig {
            max_evals: 32,
            ..RandomConfig::default()
        },
    );
    let csv = telemetry::convergence_csv(&[("random", &outcome)]);
    let curve = "target/observability.convergence.csv";
    std::fs::write(curve, &csv).expect("write csv");
    println!(
        "wrote {curve}: random search converged to {} ({:.3}s predicted) in {} evaluations",
        outcome.best,
        outcome.score_ns * 3.0 / 1e9,
        outcome.evaluations
    );
}
