//! Out-of-core Jacobi up close: how memory pressure changes execution,
//! what prefetching buys (the Figure 6 loop transformation), and how
//! MHETA's Eq. 1 vs Eq. 2 track both variants.
//!
//! ```text
//! cargo run --release --example outofcore_jacobi
//! ```

use mheta::prelude::*;
use mheta::sim::NodeSpec;

fn main() {
    let bench = Benchmark::Jacobi(Jacobi::default());
    let iters = 10;

    // A cluster whose memory shrinks node by node: node 0 holds its
    // share in core, node 7 streams nearly everything.
    let mut spec = ClusterSpec::homogeneous(8);
    spec.name = "SHRINK".into();
    for (i, node) in spec.nodes.iter_mut().enumerate() {
        *node = NodeSpec::default().with_memory((512 * 1024) >> (i / 2));
    }
    let dist = GenBlock::block(bench.total_rows(), 8);

    println!(
        "grid {}x{} over 8 nodes with shrinking memory, Blk distribution\n",
        768, 192
    );

    for (label, prefetch) in [
        ("synchronous reads (Eq. 1)", false),
        ("prefetching (Eq. 2)", true),
    ] {
        let model = build_model(&bench, &spec, prefetch).expect("model");
        let predicted = model.predict(dist.rows()).expect("predict");
        let measured = run_measured(&bench, &spec, &dist, iters, prefetch).expect("run");
        println!("--- {label} ---");
        println!(
            "  predicted {:.2}s, actual {:.2}s (diff {:.2}%)",
            predicted.app_secs(iters),
            measured.secs,
            percent_difference(predicted.app_secs(iters), measured.secs)
        );
        println!("  per-node predicted iteration breakdown:");
        for (i, b) in predicted.breakdown.iter().enumerate() {
            let plans = model.node_plans(i, dist.rows()[i]);
            let plan = plans.values().next().expect("one variable");
            println!(
                "    node {i}: memory {:>4}K  {}  compute {:>5.1}ms  I/O {:>6.1}ms",
                spec.nodes[i].memory_bytes / 1024,
                if plan.in_core {
                    "in-core ".to_string()
                } else {
                    format!("OOC N_io={:<3}", plan.n_io)
                },
                b.compute_ns / 1e6,
                b.io_ns / 1e6,
            );
        }
        println!();
    }

    println!("Prefetching hides read latency behind the stencil computation of the");
    println!("previous chunk (the unrolled loop of the paper's Figure 6); the model's");
    println!("effective latency L_e = max(0, L_r - T_o) captures exactly that.");
}
