//! Crash-stop failure and recovery, end to end: Jacobi runs on the
//! Table 1 **DC** preset, rank 2 dies at iteration 40 of 60, and the
//! survivors detect the failure, roll back to the last checkpoint,
//! redistribute the dead rank's rows by CPU power, re-predict with
//! MHETA on the shrunken cluster, and finish the run.
//!
//! The interesting claim is the last one: the *re-prediction* made on
//! the 7 survivors should track the simulated post-failure makespan as
//! closely as the original prediction tracked the healthy cluster —
//! the model doesn't care that the cluster shrank mid-run.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! Set `MHETA_SEED` to vary the noise seed (CI's chaos leg runs three),
//! and find the recovery-annotated Perfetto trace afterwards at
//! `target/crash_recovery.perfetto.json` (open in ui.perfetto.dev; the
//! per-rank "recovery" track carries the checkpoint/rollback/
//! redistribution/reprediction slices).

use mheta::apps::{recovery_report, repredict_after_crash, run_resilient};
use mheta::obs::perfetto_json_with_recovery;
use mheta::prelude::*;

fn main() {
    let app = Jacobi::default();
    let iters: u32 = 60;
    let mut healthy = presets::dc();
    if let Some(seed) = std::env::var("MHETA_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        healthy.seed = seed;
    }
    let spec = presets::with_crash(healthy.clone(), 2, 40, 8);
    let dist = GenBlock::block(app.rows, spec.len());

    // Pre-failure: the model's forecast for the healthy 8-node run.
    let bench = Benchmark::Jacobi(app.clone());
    let model = build_model(&bench, &healthy, false).expect("model assembly");
    let pre_pred = model.predict(dist.rows()).expect("prediction");
    println!(
        "pre-failure  predicted {:.3}s for {iters} iterations on {} ({} nodes)",
        pre_pred.app_secs(iters),
        healthy.name,
        spec.len()
    );

    // The failure run: checkpoint every 8 iterations, rank 2 dies when
    // it begins iteration 40.
    let run = run_resilient(&app, &spec, &dist, iters).expect("resilient run");
    let report = recovery_report(&run, iters).expect("a recovery happened");
    println!(
        "crash        rank {:?} died; survivors detected it, rolled back to \
         iteration {} and re-ran {} iterations",
        report.dead, report.rollback_iteration, report.remaining_iters
    );
    println!(
        "actual       whole run took {:.3}s (healthy forecast was {:.3}s)",
        run.measured.secs,
        pre_pred.app_secs(iters)
    );

    // Recovery overhead, by phase (max over survivors).
    println!("recovery breakdown (max over survivors):");
    for (name, ns) in ["checkpoint", "rollback", "redistribution", "reprediction"]
        .iter()
        .zip(report.recovery_ns)
    {
        println!("  {name:<16} {:>9.3} ms", ns / 1e6);
    }

    // Post-failure: MHETA re-predicts on the 7 survivors with the
    // redistributed rows, and we compare against the simulated
    // post-failure timeline (resume to finish, checkpoint tax excluded).
    let survivor = run
        .outcomes
        .iter()
        .find(|o| o.alive)
        .expect("survivors exist");
    let post_pred = repredict_after_crash(&app, &spec, &report.dead, &survivor.final_rows)
        .expect("re-prediction");
    let predicted_post_ns = post_pred.iteration_ns * f64::from(report.remaining_iters);
    let pct = percent_difference(predicted_post_ns, report.actual_post_ns);
    println!(
        "post-failure predicted {:.3}s for the remaining {} iterations, \
         simulated {:.3}s ({pct:+.2}%)",
        predicted_post_ns / 1e9,
        report.remaining_iters,
        report.actual_post_ns / 1e9,
    );

    // The full timeline, recovery track included, for ui.perfetto.dev.
    let spans: Vec<Vec<RecoverySpan>> = run.outcomes.iter().map(|o| o.spans.clone()).collect();
    let path = "target/crash_recovery.perfetto.json";
    std::fs::write(
        path,
        perfetto_json_with_recovery(&run.traces, &run.hooks, &spans),
    )
    .expect("write perfetto trace");
    println!("wrote {path}");

    // CI's chaos leg runs this across seeds: hold the re-prediction to
    // the same standard the paper holds the healthy prediction to.
    assert!(
        pct.abs() < 5.0,
        "post-failure re-prediction off by {pct:+.2}% (acceptance: 5%)"
    );
}
