//! # MHETA — an execution model for heterogeneous clusters
//!
//! A comprehensive reproduction of *"The MHETA Execution Model for
//! Heterogeneous Clusters"* (Nakazawa, Lowenthal, Zhou — SC|05), built
//! as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | virtual-time heterogeneous cluster simulator (CPU power, memory, disk latency per node) |
//! | [`mpi`] | MPI-like messaging, collectives, explicit file I/O, MPI-Jack interposition hooks |
//! | [`core`] | **the MHETA model**: program structure, microbenchmarks, instrumented profiles, prediction equations |
//! | [`dist`] | `GEN_BLOCK` distributions, the Figure 8 spectrum, four search algorithms |
//! | [`apps`] | Jacobi, CG, RNA (pipelined), Lanczos, Multigrid benchmarks with real numerics |
//! | [`obs`] | observability: metrics, Perfetto trace export, critical-path analysis, search telemetry |
//! | [`serve`] | the planning service: portfolio search, plan cache, admission control, `pland`/`planctl` |
//!
//! This facade crate re-exports all of them and is what the examples
//! and integration tests build against.
//!
//! ## Quickstart
//!
//! Build a model from one instrumented iteration and predict an
//! arbitrary distribution:
//!
//! ```
//! use mheta::apps::{build_model, run_measured, Benchmark, Jacobi};
//! use mheta::dist::GenBlock;
//! use mheta::sim::ClusterSpec;
//!
//! let mut spec = ClusterSpec::homogeneous(4);
//! spec.noise.amplitude = 0.0;
//! let bench = Benchmark::Jacobi(Jacobi::small());
//!
//! // Microbenchmarks + one instrumented iteration under Blk.
//! let model = mheta::apps::build_model(&bench, &spec, false).unwrap();
//!
//! // Evaluate a candidate distribution in microseconds...
//! let dist = GenBlock::block(bench.total_rows(), 4);
//! let predicted = model.predict(dist.rows()).unwrap().app_secs(4);
//!
//! // ...and compare with the simulated actual time.
//! let actual = run_measured(&bench, &spec, &dist, 4, false).unwrap().secs;
//! let err = (predicted - actual).abs() / actual;
//! assert!(err < 0.10, "prediction within 10%: {err}");
//! # let _ = build_model; // silence unused-import style lints in doctests
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use mheta_apps as apps;
pub use mheta_core as core;
pub use mheta_dist as dist;
pub use mheta_mpi as mpi;
pub use mheta_obs as obs;
pub use mheta_serve as serve;
pub use mheta_sim as sim;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use mheta_apps::{
        anchor_inputs, build_model, percent_difference, recovery_report, repredict_after_crash,
        run_adaptive, run_instrumented, run_measured, run_observed, run_resilient, AdaptiveCg,
        AdaptiveConfig, AdaptiveJacobi, AdaptiveRun, Benchmark, Cg, Jacobi, Lanczos, Multigrid,
        Observed, RecoveryReport, ResilientJacobi, ResilientRun, Rna,
    };
    pub use mheta_core::{Mheta, Prediction, ProgramStructure};
    pub use mheta_dist::{AnchorInputs, GenBlock, SpectrumPath};
    pub use mheta_obs::{CriticalPath, Metrics};
    pub use mheta_serve::{PlanRequest, Planner, PlannerConfig, SearchParams};
    pub use mheta_sim::{
        presets, ClusterSpec, CrashSpec, FaultSpec, NodeSpec, RecoveryKind, RecoverySpan, SimDur,
        SimTime,
    };
}
