//! End-to-end integration: the full MHETA pipeline — microbenchmarks,
//! instrumented iteration, model assembly, prediction — against the
//! simulated ground truth, for every benchmark application on
//! heterogeneous clusters.

use mheta::prelude::*;
use mheta::sim::NodeSpec;

/// A small heterogeneous cluster exercising all three axes, sized for
/// the reduced test applications.
fn small_hybrid() -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(4);
    spec.name = "TEST-HY".into();
    spec.nodes[0] = NodeSpec::default()
        .with_cpu_power(0.5)
        .with_memory(64 * 1024);
    spec.nodes[1] = NodeSpec::default().with_memory(4 * 1024); // OOC
    spec.nodes[2] = NodeSpec::default()
        .with_io_factor(2.0)
        .with_memory(64 * 1024);
    spec.nodes[3] = NodeSpec::default()
        .with_cpu_power(2.0)
        .with_memory(64 * 1024);
    spec
}

#[test]
fn model_tracks_actual_across_spectrum_for_all_apps() {
    let spec = small_hybrid();
    for bench in Benchmark::small_four() {
        let model =
            build_model(&bench, &spec, false).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let inputs = anchor_inputs(&model);
        let path = SpectrumPath::full(&inputs);
        let iters = 3;
        for (label, frac) in [("Blk", 0.0), ("I-C", 0.25), ("I-C/Bal", 0.5), ("Bal", 0.75)] {
            let dist = path.at(frac);
            let predicted = model.predict(dist.rows()).unwrap().app_secs(iters);
            let actual = run_measured(&bench, &spec, &dist, iters, false)
                .unwrap()
                .secs;
            let diff = percent_difference(predicted, actual);
            assert!(
                diff < 20.0,
                "{} at {label}: predicted {predicted:.4}s vs actual {actual:.4}s ({diff:.1}%)",
                bench.name()
            );
        }
    }
}

#[test]
fn prefetch_pipeline_works_end_to_end() {
    let spec = small_hybrid();
    let bench = Benchmark::Jacobi(Jacobi::small());
    let model = build_model(&bench, &spec, true).expect("prefetch model");
    let dist = GenBlock::block(bench.total_rows(), 4);
    let iters = 4;
    let predicted = model.predict(dist.rows()).unwrap().app_secs(iters);
    let actual = run_measured(&bench, &spec, &dist, iters, true)
        .unwrap()
        .secs;
    let diff = percent_difference(predicted, actual);
    assert!(
        diff < 15.0,
        "prefetch: {predicted:.4}s vs {actual:.4}s ({diff:.1}%)"
    );

    // Prefetching must not be slower than synchronous streaming.
    let sync = run_measured(&bench, &spec, &dist, iters, false)
        .unwrap()
        .secs;
    assert!(actual <= sync * 1.02, "prefetch {actual} vs sync {sync}");
}

#[test]
fn gbs_search_finds_a_distribution_no_worse_than_blk() {
    use mheta::dist::{gbs_search, GbsConfig};
    let spec = small_hybrid();
    for bench in Benchmark::small_four() {
        let model = build_model(&bench, &spec, false).unwrap();
        let inputs = anchor_inputs(&model);
        let path = SpectrumPath::new(&inputs);
        let outcome = gbs_search(&path, &model, GbsConfig::default());

        let blk = GenBlock::block(bench.total_rows(), 4);
        let blk_act = run_measured(&bench, &spec, &blk, 3, false).unwrap().secs;
        let found_act = run_measured(&bench, &spec, &outcome.best, 3, false)
            .unwrap()
            .secs;
        assert!(
            found_act <= blk_act * 1.05,
            "{}: GBS pick {found_act:.4}s worse than Blk {blk_act:.4}s",
            bench.name()
        );
    }
}

#[test]
fn instrumented_iteration_records_structure() {
    use mheta::mpi::{HookEvent, OpKind, ScopeKind};
    let spec = small_hybrid();
    let bench = Benchmark::Cg(Cg::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let recorders = run_instrumented(&bench, &spec, &dist, false).unwrap();
    assert_eq!(recorders.len(), 4);
    for rec in &recorders {
        // Every rank saw sections, stages, file reads (forced I/O), and
        // reduction messaging.
        let has = |pred: &dyn Fn(&HookEvent) -> bool| rec.events.iter().any(pred);
        assert!(has(&|e| matches!(
            e,
            HookEvent::ScopeEnter {
                kind: ScopeKind::Section,
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            HookEvent::ScopeEnter {
                kind: ScopeKind::Stage,
                ..
            }
        )));
        assert!(has(
            &|e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::FileRead)
        ));
        assert!(has(
            &|e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::Send)
        ));
    }
}

#[test]
fn predictions_distinguish_good_from_bad_distributions() {
    // On a cluster with one crippled node, loading that node must
    // predict slower than avoiding it.
    let mut spec = ClusterSpec::homogeneous(4);
    spec.nodes[0].cpu_power = 0.25;
    let bench = Benchmark::Lanczos(Lanczos::small());
    let model = build_model(&bench, &spec, false).unwrap();
    let total = bench.total_rows();
    let heavy_on_slow = GenBlock::new(vec![total - 3, 1, 1, 1]).unwrap();
    let light_on_slow = GenBlock::new(vec![1, 21, 21, total - 43]).unwrap();
    let heavy = model.predict(heavy_on_slow.rows()).unwrap().iteration_ns;
    let light = model.predict(light_on_slow.rows()).unwrap().iteration_ns;
    assert!(
        heavy > light * 2.0,
        "loading the slow node should clearly hurt: {heavy} vs {light}"
    );
}

#[test]
fn saved_model_predicts_identically_after_reload() {
    use mheta::core::{load_model, save_model};
    let spec = small_hybrid();
    let bench = Benchmark::Rna(Rna::small());
    let model = build_model(&bench, &spec, false).unwrap();
    let text = save_model(&model);
    let reloaded = load_model(&text).expect("MHETA file round-trips");
    let dist = GenBlock::block(bench.total_rows(), 4);
    let a = model.predict(dist.rows()).unwrap();
    let b = reloaded.predict(dist.rows()).unwrap();
    assert_eq!(a.per_node_ns, b.per_node_ns, "bit-exact after reload");
    // And the file is human-readable text with the expected sections.
    for marker in [
        "[structure]",
        "[arch]",
        "[profile]",
        "section =",
        "compute =",
    ] {
        assert!(text.contains(marker), "missing {marker}");
    }
}

#[test]
fn redistribution_cost_model_tracks_execution() {
    use mheta::apps::jacobi::VAR_U;
    use mheta::apps::redistribute_var;
    use mheta::dist::predict_cost_ns;
    use mheta::mpi::{run_app, ExecMode, NullRecorder, RunOptions};

    let mut spec = ClusterSpec::homogeneous(4);
    spec.noise.amplitude = 0.0;
    let app = Jacobi::small();
    let bench = Benchmark::Jacobi(app.clone());
    let model = build_model(&bench, &spec, false).unwrap();

    let old = GenBlock::block(app.rows, 4);
    let new = GenBlock::new(vec![40, 10, 7, 7]).unwrap();
    let predicted_ns = predict_cost_ns(&model, &old, &new);

    let cols = app.cols;
    let run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| NullRecorder,
        |comm| {
            let rank = comm.rank();
            let m = old.rows()[rank];
            comm.ctx().disk.create(VAR_U, m * cols);
            redistribute_var(comm, VAR_U, cols, &old, &new)
        },
    )
    .unwrap();
    let actual_ns = run
        .results
        .iter()
        .map(|d| d.as_nanos_f64())
        .fold(0.0f64, f64::max);
    let diff = percent_difference(predicted_ns, actual_ns);
    assert!(
        diff < 20.0,
        "redistribution: predicted {predicted_ns:.0}ns vs actual {actual_ns:.0}ns ({diff:.1}%)"
    );
}

#[test]
fn switch_benefit_recommends_sensible_moves() {
    use mheta::dist::switch_benefit_ns;
    // On a memory-squeezed cluster, switching from Blk to the spectrum
    // best must pay off for many remaining iterations and not for zero.
    let spec = small_hybrid();
    let bench = Benchmark::Jacobi(Jacobi::small());
    let model = build_model(&bench, &spec, false).unwrap();
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let blk = GenBlock::block(bench.total_rows(), 4);
    let best = (0..=16)
        .map(|k| path.at(f64::from(k) / 16.0))
        .min_by(|a, b| {
            let pa = model.predict(a.rows()).unwrap().iteration_ns;
            let pb = model.predict(b.rows()).unwrap().iteration_ns;
            pa.total_cmp(&pb)
        })
        .unwrap();
    let none = switch_benefit_ns(&model, &blk, &best, 0);
    let many = switch_benefit_ns(&model, &blk, &best, 200);
    assert!(none < 0.0, "zero remaining iterations can never pay off");
    assert!(many > 0.0, "200 iterations should amortize the move");
    assert!(many > none);
}
