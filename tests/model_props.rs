//! Property-based tests of the prediction engine itself: for arbitrary
//! valid distributions the model must stay finite, positive,
//! deterministic, and sane (more rows on a node never makes that
//! node's predicted work smaller).

use mheta::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared model (building it per proptest case would dominate).
fn shared_model() -> &'static (Mheta, usize) {
    static MODEL: OnceLock<(Mheta, usize)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut spec = ClusterSpec::homogeneous(4);
        spec.nodes[1].cpu_power = 0.5;
        spec.nodes[2].memory_bytes = 4 * 1024;
        let bench = Benchmark::Jacobi(Jacobi::small());
        let model = build_model(&bench, &spec, false).expect("model builds");
        (model, bench.total_rows())
    })
}

fn arb_distribution(total: usize, n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1.0f64..100.0, n..=n)
        .prop_map(move |w| GenBlock::apportion(total, &w).rows().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_are_finite_positive_and_deterministic(
        rows in arb_distribution(64, 4),
    ) {
        let (model, _) = shared_model();
        let a = model.predict(&rows).unwrap();
        let b = model.predict(&rows).unwrap();
        prop_assert!(a.iteration_ns.is_finite() && a.iteration_ns > 0.0);
        prop_assert_eq!(a.per_node_ns.clone(), b.per_node_ns);
        for nb in &a.breakdown {
            prop_assert!(nb.compute_ns >= 0.0 && nb.io_ns >= 0.0 && nb.comm_ns >= 0.0);
        }
        // The slowest node bounds the iteration.
        let max = a.per_node_ns.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((a.iteration_ns - max).abs() < 1e-9);
    }

    #[test]
    fn moving_rows_to_a_node_never_shrinks_its_stage_work(
        base in arb_distribution(64, 4),
        extra in 1usize..16,
    ) {
        let (model, _) = shared_model();
        prop_assume!(base[1] > extra);
        let mut more = base.clone();
        more[0] += extra;
        more[1] -= extra;
        // Node 0's compute+I/O (breakdown without comm) must not
        // decrease when it owns more rows.
        let a = model.predict(&base).unwrap();
        let b = model.predict(&more).unwrap();
        let work_a = a.breakdown[0].compute_ns + a.breakdown[0].io_ns;
        let work_b = b.breakdown[0].compute_ns + b.breakdown[0].io_ns;
        prop_assert!(
            work_b + 1e-6 >= work_a,
            "node 0 with {} rows does less work than with {} rows ({work_b} < {work_a})",
            more[0], base[0]
        );
    }

    #[test]
    fn invalid_distributions_are_rejected_not_mispredicted(
        rows in proptest::collection::vec(1usize..40, 4..=4),
    ) {
        let (model, total) = shared_model();
        let sum: usize = rows.iter().sum();
        let result = model.predict(&rows);
        if sum == *total {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}

#[test]
fn ooc_plans_scale_sanely_with_memory() {
    use mheta::core::plan_node;
    // Increasing memory never increases N_io.
    let row_bytes = [(1u32, 160.0)];
    let mut last_n_io = u64::MAX;
    for mem in [1_000u64, 2_000, 4_000, 8_000, 16_000, 32_000] {
        let plan = plan_node(mem, 100.0, 100, &row_bytes)[&1];
        assert!(plan.n_io <= last_n_io, "N_io grew with memory");
        last_n_io = plan.n_io;
    }
    assert_eq!(last_n_io, 0, "ample memory is in-core");
}
