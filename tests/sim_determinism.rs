//! Reproducibility: the whole stack — simulator, applications,
//! instrumentation, model — must be bit-deterministic for a given
//! seed, regardless of host thread scheduling, and must respond to
//! seed changes.

use mheta::prelude::*;

fn hybrid(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(4);
    spec.nodes[0].cpu_power = 0.6;
    spec.nodes[3].memory_bytes = 4 * 1024;
    spec.noise.amplitude = 0.03;
    spec.seed = seed;
    spec
}

#[test]
fn measured_runs_are_bit_identical_across_repeats() {
    let spec = hybrid(42);
    for bench in Benchmark::small_four() {
        let dist = GenBlock::block(bench.total_rows(), 4);
        let a = run_measured(&bench, &spec, &dist, 3, false).unwrap();
        let b = run_measured(&bench, &spec, &dist, 3, false).unwrap();
        assert_eq!(a.secs, b.secs, "{} timing not deterministic", bench.name());
        assert_eq!(
            a.check,
            b.check,
            "{} result not deterministic",
            bench.name()
        );
        assert_eq!(a.per_rank_secs, b.per_rank_secs);
    }
}

#[test]
fn different_seeds_change_timings_but_not_results() {
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let a = run_measured(&bench, &hybrid(1), &dist, 3, false).unwrap();
    let b = run_measured(&bench, &hybrid(2), &dist, 3, false).unwrap();
    assert_ne!(a.secs, b.secs, "noise seed should perturb timings");
    assert_eq!(a.check, b.check, "numerics are seed-independent");
}

#[test]
fn model_building_is_deterministic() {
    let spec = hybrid(7);
    let bench = Benchmark::Cg(Cg::small());
    let m1 = build_model(&bench, &spec, false).unwrap();
    let m2 = build_model(&bench, &spec, false).unwrap();
    let dist = GenBlock::block(bench.total_rows(), 4);
    let p1 = m1.predict(dist.rows()).unwrap();
    let p2 = m2.predict(dist.rows()).unwrap();
    assert_eq!(p1.per_node_ns, p2.per_node_ns);
}

#[test]
fn noise_amplitude_bounds_run_to_run_spread() {
    // With noise on, two different seeds stay within a few percent of
    // each other — noise is a perturbation, not chaos.
    let bench = Benchmark::Lanczos(Lanczos::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let times: Vec<f64> = (0..5)
        .map(|s| {
            run_measured(&bench, &hybrid(100 + s), &dist, 2, false)
                .unwrap()
                .secs
        })
        .collect();
    let min = times.iter().copied().fold(f64::MAX, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    assert!(max / min < 1.10, "5 seeds spread more than 10%: {times:?}");
}

mod trace_invariants {
    use super::*;
    use mheta::sim::FaultSpec;
    use proptest::prelude::*;

    fn faulty(seed: u64) -> ClusterSpec {
        let mut spec = hybrid(seed);
        // Starve two nodes so disk I/O (and thus disk faults) actually
        // occurs, and turn every fault class on.
        spec.faults = FaultSpec {
            disk_read_fault_rate: 0.10,
            disk_write_fault_rate: 0.05,
            msg_resend_rate: 0.05,
            slowdown_rate: 0.20,
            slowdown_factor: 1.5,
            slowdown_period_ns: 1.0e5,
            mem_pressure_rate: 0.10,
            mem_pressure_bytes: 64 * 1024,
            ..FaultSpec::default()
        };
        spec
    }

    proptest! {
        // Few cases: each one is a full 4-rank cluster run.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Whatever the fault schedule, every rank's trace stays a
        /// non-overlapping, ordered partition of its virtual timeline.
        #[test]
        fn traces_stay_monotone_under_fault_injection(seed in 0u64..1_000_000) {
            let bench = Benchmark::Jacobi(Jacobi::small());
            let dist = GenBlock::block(bench.total_rows(), 4);
            let run = run_observed(&bench, &faulty(seed), &dist, 2, false).unwrap();
            prop_assert_eq!(run.traces.len(), 4);
            for t in &run.traces {
                prop_assert!(t.is_monotone(), "rank {} trace out of order (seed {seed})", t.rank);
                if let Some(last) = t.events.last() {
                    prop_assert!(last.end <= t.finish, "rank {} event past finish", t.rank);
                }
            }
        }
    }
}

mod crash_determinism {
    use super::*;
    use mheta::apps::run_resilient;
    use proptest::prelude::*;

    proptest! {
        // Each case runs two full resilient 4-rank recoveries.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Identical seeds and crash plans reproduce the entire
        /// post-recovery run bitwise: traces, recovery spans, rollback
        /// decisions, redistributed layouts, and the final residual.
        #[test]
        fn crash_recovery_is_bit_deterministic(
            seed in 0u64..1_000_000,
            victim in 1usize..4,
            at_iteration in 0u32..10,
            interval in 1u32..4,
        ) {
            // hybrid()'s memory-starved node 3 would (correctly) be
            // rejected by the in-core resilient driver; keep the CPU
            // heterogeneity and noise, drop the starvation.
            let mut spec = hybrid(seed);
            spec.nodes[3].memory_bytes = 512 * 1024;
            spec.faults = FaultSpec {
                crashes: vec![CrashSpec {
                    rank: victim,
                    at_iteration: Some(at_iteration),
                    at_time_ns: None,
                }],
                checkpoint_interval: interval,
                ..FaultSpec::default()
            };
            let app = Jacobi::small();
            let dist = GenBlock::block(app.rows, 4);
            let a = run_resilient(&app, &spec, &dist, 10).unwrap();
            let b = run_resilient(&app, &spec, &dist, 10).unwrap();
            for (ta, tb) in a.traces.iter().zip(&b.traces) {
                prop_assert!(ta.events == tb.events, "rank {} trace diverged", ta.rank);
                prop_assert_eq!(ta.finish, tb.finish);
            }
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                prop_assert_eq!(&oa.spans, &ob.spans);
                prop_assert_eq!(&oa.dead, &ob.dead);
                prop_assert_eq!(oa.rollback_iteration, ob.rollback_iteration);
                prop_assert_eq!(&oa.final_rows, &ob.final_rows);
                prop_assert_eq!(oa.result.check.to_bits(), ob.result.check.to_bits());
            }
            prop_assert_eq!(a.measured.secs, b.measured.secs);
        }
    }
}

#[test]
fn tracing_does_not_change_virtual_time() {
    use mheta::mpi::{run_app, ExecMode, NullRecorder, RunOptions};
    let spec = hybrid(9);
    let bench = Benchmark::Rna(Rna::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let run_with = |tracing: bool| {
        let dist = dist.clone();
        let bench = match &bench {
            Benchmark::Rna(r) => r.clone(),
            _ => unreachable!(),
        };
        run_app(
            &spec,
            RunOptions {
                tracing,
                mode: ExecMode::Normal,
            },
            |_| NullRecorder,
            move |comm| bench.run(comm, &dist, 2),
        )
        .unwrap()
        .makespan()
    };
    assert_eq!(run_with(false), run_with(true));
}
