//! Acceptance criteria for the adaptive resilience layer.
//!
//! Under a persistent 4× single-node slowdown on the DC preset
//! (8 nodes, CPU powers `[0.5, 0.5, 1, 1, 1, 1, 1.75, 1.75]`), the
//! adaptive driver — phi-accrual detection plus mid-run GEN_BLOCK
//! rebalancing — must recover at least 60% of the makespan gap between
//! the **static** CPU-power distribution (which keeps overloading the
//! degraded node) and the **oracle** distribution (apportioned with the
//! degraded weight from iteration 0). The result must be deterministic
//! across seeds, and the detector must stay silent on fault-free runs.

use mheta_apps::{run_adaptive, AdaptiveConfig, AdaptiveRun, Jacobi};
use mheta_dist::GenBlock;
use mheta_sim::presets::{dc, with_degrade};
use mheta_sim::ClusterSpec;

/// A baseline-power node: slow enough that overloading it hurts, and
/// not one of the 0.5× nodes (whose degradation the static GEN_BLOCK
/// already partially shields by assigning them fewer rows).
const DEGRADED_RANK: usize = 3;
const DEGRADE_FACTOR: f64 = 4.0;
/// Past the detector's warmup (3 samples), so the healthy baseline is
/// learned before the fault begins.
const DEGRADE_AT: u32 = 6;
const ITERS: u32 = 40;

fn app(seed: u64) -> Jacobi {
    Jacobi {
        rows: 128,
        cols: 16,
        seed,
    }
}

fn cpu_powers(spec: &ClusterSpec) -> Vec<f64> {
    spec.nodes.iter().map(|n| n.cpu_power).collect()
}

/// The adaptive driver with detection disabled: identical per-iteration
/// overheads (heartbeat exchange, checkpoints) but no suspicion and no
/// rebalancing — the fair static baseline.
fn static_cfg() -> AdaptiveConfig {
    let mut cfg = AdaptiveConfig::default();
    cfg.detector.phi_threshold = f64::INFINITY;
    cfg
}

fn degraded_spec() -> ClusterSpec {
    with_degrade(dc(), DEGRADED_RANK, DEGRADE_AT, DEGRADE_FACTOR)
}

fn run(spec: &ClusterSpec, layout0: &[usize], seed: u64, cfg: AdaptiveConfig) -> AdaptiveRun {
    run_adaptive(&app(seed), spec, layout0, ITERS, cfg).expect("adaptive run failed")
}

#[test]
fn adaptive_recovers_sixty_percent_of_makespan_gap_on_dc() {
    for seed in [1u64, 2, 3] {
        let spec = degraded_spec();
        let powers = cpu_powers(&spec);
        let layout0 = GenBlock::apportion(app(seed).rows, &powers).rows().to_vec();

        let static_run = run(&spec, &layout0, seed, static_cfg());
        let adaptive_run = run(&spec, &layout0, seed, AdaptiveConfig::default());

        let mut oracle_w = powers.clone();
        oracle_w[DEGRADED_RANK] /= DEGRADE_FACTOR;
        let oracle_layout = GenBlock::apportion(app(seed).rows, &oracle_w)
            .rows()
            .to_vec();
        let oracle_run = run(&spec, &oracle_layout, seed, static_cfg());

        let s = static_run.measured.secs;
        let a = adaptive_run.measured.secs;
        let o = oracle_run.measured.secs;
        assert!(
            o < s,
            "seed {seed}: oracle ({o:.4}s) must beat static ({s:.4}s)"
        );
        let recovered = (s - a) / (s - o);
        assert!(
            recovered >= 0.6,
            "seed {seed}: adaptive recovered only {:.1}% of the \
             static-to-oracle gap (static {s:.4}s, adaptive {a:.4}s, \
             oracle {o:.4}s)",
            100.0 * recovered,
        );

        // The gain must come from an actual mid-run rebalance that
        // shed rows from the degraded node...
        let out0 = &adaptive_run.outcomes[0];
        assert!(
            !out0.rebalances.is_empty(),
            "seed {seed}: adaptive run never rebalanced"
        );
        assert!(
            out0.final_rows[DEGRADED_RANK] < layout0[DEGRADED_RANK],
            "seed {seed}: degraded rank kept its rows"
        );
        // ...without changing the computed answer: the residual is
        // distribution-independent.
        let rel = (adaptive_run.measured.check - static_run.measured.check).abs()
            / static_run.measured.check.abs().max(1e-300);
        assert!(
            rel < 1e-9,
            "seed {seed}: rebalancing changed the residual (rel {rel:e})"
        );
    }
}

#[test]
fn adaptive_gap_recovery_is_deterministic() {
    let spec = degraded_spec();
    let powers = cpu_powers(&spec);
    let layout0 = GenBlock::apportion(app(1).rows, &powers).rows().to_vec();
    let one = run(&spec, &layout0, 1, AdaptiveConfig::default());
    let two = run(&spec, &layout0, 1, AdaptiveConfig::default());
    assert_eq!(one.measured.secs, two.measured.secs);
    assert_eq!(one.windows, two.windows);
    let (a, b) = (&one.outcomes[0], &two.outcomes[0]);
    assert_eq!(a.rebalances, b.rebalances);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.final_rows, b.final_rows);
}

#[test]
fn detector_stays_silent_on_fault_free_dc() {
    let spec = dc();
    let powers = cpu_powers(&spec);
    let layout0 = GenBlock::apportion(app(7).rows, &powers).rows().to_vec();
    let fault_free = run(&spec, &layout0, 7, AdaptiveConfig::default());
    for out in &fault_free.outcomes {
        assert!(out.rebalances.is_empty(), "false-positive rebalance");
        assert!(out.transitions.is_empty(), "false-positive transition");
        assert_eq!(out.final_rows, layout0);
    }
    // And its makespan matches the detection-disabled baseline exactly:
    // the detector's bookkeeping is free on the virtual clock.
    let quiet = run(&spec, &layout0, 7, static_cfg());
    assert_eq!(fault_free.measured.secs, quiet.measured.secs);
}
