//! Property-based tests of the two exactness guarantees behind the
//! prediction-accuracy attribution engine:
//!
//! 1. the model's term decomposition sums *exactly* (bitwise, not
//!    within an epsilon) at every level of the hierarchy — stages fold
//!    into sections, sections into ranks, and the coarse
//!    `NodeBreakdown` view is precisely the grouped terms;
//! 2. the audit's per-term residual lines partition the total residual
//!    (predicted − actual) exactly, and its actual-side terms partition
//!    each rank's timed window exactly, across seeds, applications,
//!    and fault plans.
//!
//! Only `per_node_ns` — which comes off the simulated warmup clock, not
//! the term fold — is compared with a relative epsilon.

use mheta::obs::AuditReport;
use mheta::prelude::*;
use mheta::sim::FaultSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared heterogeneous model (building per case would dominate).
fn shared_model() -> &'static (Mheta, usize) {
    static MODEL: OnceLock<(Mheta, usize)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut spec = ClusterSpec::homogeneous(4);
        spec.nodes[1].cpu_power = 0.5;
        spec.nodes[2].memory_bytes = 4 * 1024;
        let bench = Benchmark::Jacobi(Jacobi::small());
        let model = build_model(&bench, &spec, false).expect("model builds");
        (model, bench.total_rows())
    })
}

fn arb_distribution(total: usize, n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1.0f64..100.0, n..=n)
        .prop_map(move |w| GenBlock::apportion(total, &w).rows().to_vec())
}

/// A noise-free spec with an explicit seed and mild heterogeneity.
fn quiet(n: usize, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(n);
    spec.nodes[1].cpu_power = 0.6;
    spec.noise.amplitude = 0.0;
    spec.seed = seed;
    spec
}

/// The fault plan used by the "faulty" audit cases: every fault class
/// enabled at a moderate rate.
fn faults() -> FaultSpec {
    FaultSpec {
        disk_read_fault_rate: 0.10,
        disk_write_fault_rate: 0.05,
        msg_resend_rate: 0.05,
        slowdown_rate: 0.20,
        slowdown_factor: 1.5,
        slowdown_period_ns: 1.0e5,
        mem_pressure_rate: 0.10,
        mem_pressure_bytes: 64 * 1024,
        ..FaultSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary distributions, the hierarchy of term folds is
    /// bitwise self-consistent: summing stage terms then comm per
    /// section, then sections per rank, reproduces `rank_terms`
    /// exactly, and the coarse `NodeBreakdown` is the grouped view of
    /// the same numbers.
    #[test]
    fn term_folds_are_bitwise_exact_at_every_level(
        rows in arb_distribution(64, 4),
    ) {
        let (model, _) = shared_model();
        let p = model.predict(&rows).unwrap();
        for (rank, rt) in p.terms.iter().enumerate() {
            // Manual fixed-order fold over the leaves.
            let mut manual = mheta::core::TermBreakdown::default();
            for sec in &rt.sections {
                let mut sec_total = mheta::core::TermBreakdown::default();
                for st in &sec.stages {
                    sec_total.add(&st.terms);
                    // Stage leaves never carry comm terms.
                    prop_assert_eq!(st.terms.comm_ns(), 0.0);
                }
                sec_total.add(&sec.comm);
                // The section's own fold agrees bitwise.
                prop_assert_eq!(
                    sec_total.total_ns().to_bits(),
                    sec.totals().total_ns().to_bits()
                );
                manual.add(&sec_total);
            }
            let folded = p.rank_terms(rank);
            prop_assert_eq!(manual.total_ns().to_bits(), folded.total_ns().to_bits());

            // Coarse view == grouped terms, exactly.
            prop_assert_eq!(p.breakdown[rank].compute_ns.to_bits(), folded.compute_ns.to_bits());
            prop_assert_eq!(p.breakdown[rank].io_ns.to_bits(), folded.io_ns().to_bits());
            prop_assert_eq!(p.breakdown[rank].comm_ns.to_bits(), folded.comm_ns().to_bits());

            // The clock-derived steady-state time matches the fold to
            // f64 accumulation error only.
            let total = folded.total_ns();
            prop_assert!(
                (total - p.per_node_ns[rank]).abs() <= 1e-6 * p.per_node_ns[rank].abs() + 1e-6,
                "rank {}: fold {} vs clock {}", rank, total, p.per_node_ns[rank]
            );
        }
    }
}

proptest! {
    // Each case runs the simulator, so keep the count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The audit's invariants hold for any seed, application, and
    /// fault plan: the actual-side terms partition each rank's timed
    /// window exactly (u64 arithmetic), and the per-term residual
    /// lines fold bitwise into the rank and report residuals.
    #[test]
    fn audit_terms_partition_the_residual_exactly(
        seed in any::<u64>(),
        app in 0usize..4,
        faulty in any::<bool>(),
    ) {
        // The model is built (microbenchmarks included) on the
        // fault-free spec; faults apply to the audited run only.
        let mut spec = quiet(4, seed);
        let bench = Benchmark::small_four().swap_remove(app);
        let iters = 2;
        let model = build_model(&bench, &spec, false).unwrap();
        if faulty {
            spec.faults = faults();
        }
        let blk = GenBlock::block(bench.total_rows(), spec.len());
        let pred = model.predict(blk.rows()).unwrap();
        let obs = run_observed(&bench, &spec, &blk, iters, false).unwrap();
        let report = AuditReport::audit(&pred, iters, &obs.traces, &obs.windows);

        let mut report_fold = 0.0f64;
        for audit in &report.ranks {
            // Actual-side terms partition the window, exactly.
            let actual: u64 = audit.lines.iter().map(|l| l.actual_ns).sum();
            prop_assert_eq!(actual, audit.window_ns);
            prop_assert_eq!(audit.actual_total_ns(), audit.window_ns);

            // Residual lines fold bitwise into the rank residual.
            let fold = audit.lines.iter().fold(0.0f64, |a, l| a + l.residual_ns);
            prop_assert_eq!(fold.to_bits(), audit.residual_ns().to_bits());

            // And each line is itself predicted − actual.
            for l in &audit.lines {
                let expect = l.predicted_ns - l.actual_ns as f64;
                prop_assert_eq!(l.residual_ns.to_bits(), expect.to_bits());
            }
            report_fold += audit.residual_ns();
        }
        prop_assert_eq!(report_fold.to_bits(), report.total_residual_ns().to_bits());
    }
}
