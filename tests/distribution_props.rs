//! Property-based tests over the distribution machinery and the model:
//! invariants that must hold for *any* weights, capacities, and
//! distributions, not just the ones the experiments happen to visit.

use mheta::dist::{bal, blk, ic, ic_bal};
use mheta::dist::{AnchorInputs, GenBlock, SpectrumPath};
use proptest::prelude::*;

fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn apportion_preserves_total_and_minimum(
        total in 8usize..2000,
        weights in arb_weights(8),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let g = GenBlock::apportion(total, &weights);
        prop_assert_eq!(g.total(), total);
        prop_assert!(g.rows().iter().all(|&r| r >= 1));
    }

    #[test]
    fn apportion_is_weight_monotone(
        total in 64usize..2000,
        weights in arb_weights(6),
    ) {
        prop_assume!(weights.iter().all(|&w| w > 0.01));
        let g = GenBlock::apportion(total, &weights);
        // Strictly heavier weights never get strictly fewer rows than
        // a weight at most half theirs.
        for i in 0..6 {
            for j in 0..6 {
                if weights[i] >= 2.0 * weights[j] {
                    prop_assert!(
                        g.rows()[i] + 1 >= g.rows()[j],
                        "w[{i}]={} >> w[{j}]={} but rows {} < {}",
                        weights[i], weights[j], g.rows()[i], g.rows()[j]
                    );
                }
            }
        }
    }

    #[test]
    fn owner_is_consistent_with_offsets(
        rows in proptest::collection::vec(1usize..50, 2..8),
    ) {
        let g = GenBlock::new(rows).unwrap();
        let offsets = g.offsets();
        for node in 0..g.len() {
            for r in offsets[node]..offsets[node + 1] {
                prop_assert_eq!(g.owner(r), node);
            }
        }
    }

    #[test]
    fn anchors_always_valid(
        total in 16usize..1500,
        ns in proptest::collection::vec(0.1f64..10.0, 8..=8),
        caps in proptest::collection::vec(1usize..400, 8..=8),
    ) {
        let inp = AnchorInputs {
            total_rows: total,
            ns_per_row: ns,
            capacity_rows: caps,
        };
        for g in [blk(&inp), bal(&inp), ic(&inp), ic_bal(&inp)] {
            prop_assert_eq!(g.total(), total);
            prop_assert!(g.rows().iter().all(|&r| r >= 1));
        }
    }

    #[test]
    fn spectrum_interpolation_preserves_invariants(
        total in 16usize..1500,
        ns in proptest::collection::vec(0.1f64..10.0, 8..=8),
        caps in proptest::collection::vec(1usize..400, 8..=8),
        t in 0.0f64..1.0,
    ) {
        let inp = AnchorInputs {
            total_rows: total,
            ns_per_row: ns,
            capacity_rows: caps,
        };
        for path in [SpectrumPath::new(&inp), SpectrumPath::full(&inp)] {
            let g = path.at(t);
            prop_assert_eq!(g.total(), total);
            prop_assert!(g.rows().iter().all(|&r| r >= 1));
        }
    }

    #[test]
    fn searches_respect_invariants_and_budget(
        total in 16usize..300,
        seed in 0u64..1000,
    ) {
        use mheta::dist::{random_search, simulated_annealing, AnnealingConfig, RandomConfig};
        let n = 4;
        // A synthetic fitness: quadratic distance to an arbitrary target.
        let target: Vec<usize> = GenBlock::apportion(
            total,
            &[seed as f64 % 7.0 + 1.0, 2.0, 3.0, 1.0],
        )
        .rows()
        .to_vec();
        let fitness = move |rows: &[usize]| -> f64 {
            rows.iter()
                .zip(&target)
                .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
                .sum()
        };
        let r = random_search(total, n, &fitness, RandomConfig {
            max_evals: 40,
            seed,
            ..RandomConfig::default()
        });
        prop_assert!(r.evaluations <= 40);
        prop_assert_eq!(r.best.total(), total);
        let a = simulated_annealing(
            &GenBlock::block(total, n),
            &fitness,
            AnnealingConfig { max_evals: 40, seed, ..AnnealingConfig::default() },
        );
        prop_assert!(a.evaluations <= 40);
        prop_assert_eq!(a.best.total(), total);
        prop_assert!(a.best.rows().iter().all(|&x| x >= 1));
    }
}

mod fileio_props {
    use mheta::core::fileio;
    use mheta::core::{CommPattern, ProgramStructure, SectionSpec, StageSpec, Variable};
    use proptest::prelude::*;

    fn arb_comm() -> impl Strategy<Value = CommPattern> {
        prop_oneof![
            Just(CommPattern::None),
            (1usize..4096).prop_map(|m| CommPattern::NearestNeighbor { msg_elems: m }),
            (1usize..4096).prop_map(|m| CommPattern::Pipelined { msg_elems: m }),
            (1usize..4096).prop_map(|m| CommPattern::Reduction { msg_elems: m }),
        ]
    }

    fn arb_structure() -> impl Strategy<Value = ProgramStructure> {
        let var = (1u32..20, 1usize..5000, 0.01f64..4096.0, any::<bool>()).prop_map(
            |(id, rows, epr, ro)| Variable::streamed(id, &format!("v{id}"), rows, epr, ro),
        );
        (
            proptest::collection::vec(var, 1..4),
            proptest::collection::vec((arb_comm(), any::<bool>(), 0.01f64..=1.0), 1..5),
        )
            .prop_map(|(mut vars, sections)| {
                // Distinct ids and one shared row count.
                let rows = vars[0].total_rows;
                for (k, v) in vars.iter_mut().enumerate() {
                    v.id = k as u32 + 1;
                    v.total_rows = rows;
                }
                let first = vars[0].id;
                let sections = sections
                    .into_iter()
                    .enumerate()
                    .map(|(i, (comm, prefetch, frac))| {
                        let tiles = if matches!(comm, CommPattern::Pipelined { .. }) {
                            3
                        } else {
                            1
                        };
                        SectionSpec {
                            id: i as u32,
                            tiles,
                            stages: vec![StageSpec::new(0, vec![first], vec![], prefetch)
                                .with_row_fraction(frac)],
                            comm,
                        }
                    })
                    .collect();
                ProgramStructure {
                    name: "prop".into(),
                    sections,
                    variables: vars,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn any_valid_structure_round_trips(s in arb_structure()) {
            prop_assume!(s.validate().is_ok());
            let text = fileio::structure_to_string(&s);
            let back = fileio::structure_from_str(&text).unwrap();
            prop_assert_eq!(s, back);
        }
    }
}

mod redistribution_props {
    use mheta::dist::{rows_moved, transfer_plan, GenBlock};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn plans_conserve_rows_for_any_pair(
            old_w in proptest::collection::vec(1.0f64..50.0, 6..=6),
            new_w in proptest::collection::vec(1.0f64..50.0, 6..=6),
            total in 6usize..500,
        ) {
            let old = GenBlock::apportion(total, &old_w);
            let new = GenBlock::apportion(total, &new_w);
            let plan = transfer_plan(&old, &new);
            let shipped: usize = plan.iter().map(|t| t.rows).sum();
            prop_assert_eq!(shipped, total);
            prop_assert!(rows_moved(&plan) <= total);
            // Each destination receives exactly its new share, each
            // source ships exactly its old share.
            for i in 0..6 {
                let inc: usize = plan.iter().filter(|t| t.to == i).map(|t| t.rows).sum();
                prop_assert_eq!(inc, new.rows()[i]);
                let out: usize = plan.iter().filter(|t| t.from == i).map(|t| t.rows).sum();
                prop_assert_eq!(out, old.rows()[i]);
            }
            // Transfers tile the row space without overlap.
            let mut covered = vec![false; total];
            for t in &plan {
                for (r, slot) in covered
                    .iter_mut()
                    .enumerate()
                    .skip(t.global_start)
                    .take(t.rows)
                {
                    prop_assert!(!*slot, "row {r} covered twice");
                    *slot = true;
                }
            }
            prop_assert!(covered.into_iter().all(|c| c));
        }

        #[test]
        fn identity_plans_move_nothing(
            w in proptest::collection::vec(1.0f64..50.0, 4..=4),
            total in 4usize..300,
        ) {
            let g = GenBlock::apportion(total, &w);
            prop_assert_eq!(rows_moved(&transfer_plan(&g, &g)), 0);
        }
    }
}
