//! Differential tests pinning the incremental (delta) evaluator to the
//! full model: for every application, every Table-1 cluster preset, and
//! arbitrary random move sequences, an incremental evaluation must be
//! **bitwise-identical** (`f64::to_bits`) to a from-scratch
//! `try_eval_ns` — including under injected leaf faults, where an
//! `EvalError` must poison the session's cache and never leak stale
//! terms into a later answer.
//!
//! Case count follows `PROPTEST_CASES` (default 256); CI's `delta-diff`
//! job runs this suite at 256 cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use mheta::core::RankCost;
use mheta::dist::{DeltaEvaluator, DeltaModel, DeltaSession, EvalError, Evaluator, Move};
use mheta::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every (application, Table-1 preset) model, built once: 5 apps × 4
/// architectures. Building a model per proptest case would dominate.
fn models() -> &'static Vec<(String, Mheta, usize)> {
    static MODELS: OnceLock<Vec<(String, Mheta, usize)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let specs = [presets::dc(), presets::io(), presets::hy1(), presets::hy2()];
        let benches = [
            Benchmark::Jacobi(Jacobi::small()),
            Benchmark::Cg(Cg::small()),
            Benchmark::Rna(Rna::small()),
            Benchmark::Lanczos(Lanczos::small()),
            Benchmark::Multigrid(Multigrid::small()),
        ];
        let mut out = Vec::new();
        for spec in &specs {
            for bench in &benches {
                let model = build_model(bench, spec, false)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), spec.name));
                out.push((
                    format!("{}@{}", bench.name(), spec.name),
                    model,
                    bench.total_rows(),
                ));
            }
        }
        out
    })
}

/// A random valid distribution of `total` rows over `n` ranks.
fn random_distribution(rng: &mut SmallRng, total: usize, n: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
    GenBlock::apportion(total, &weights).rows().to_vec()
}

/// A random move in the searches' vocabulary: mostly boundary shifts
/// (the SA/GBS step), plus swaps and k-rank redistributions (the GA
/// repair step).
fn random_move(rng: &mut SmallRng, rows: &[usize]) -> Move {
    let n = rows.len();
    match rng.gen_range(0u32..10) {
        0..=6 => Move::shift(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(1..=4),
        ),
        7 | 8 => Move::swap(rng.gen_range(0..n), rng.gen_range(0..n)),
        _ => {
            // A 3-rank cycle that preserves the total and the one-row
            // minimum: each listed rank takes its left neighbor's count.
            let i = rng.gen_range(0..n);
            let (j, k) = ((i + 1) % n, (i + 2) % n);
            Move::Redistribute(vec![(i, rows[k]), (j, rows[i]), (k, rows[j])])
        }
    }
}

/// Wraps a model so every Nth `rank_cost` call fails, deterministically.
/// `Sync` (a `DeltaModel` requirement) via an atomic call counter.
struct FaultyMheta<'a> {
    inner: &'a Mheta,
    calls: AtomicU64,
    fail_every: u64,
}

impl Evaluator for FaultyMheta<'_> {
    fn try_eval_ns(&self, rows: &[usize]) -> Result<f64, EvalError> {
        self.inner.try_eval_ns(rows)
    }
}

impl DeltaModel for FaultyMheta<'_> {
    fn rank_cost(&self, rank: usize, rows: usize) -> Result<RankCost, EvalError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fail_every > 0 && n.is_multiple_of(self.fail_every) {
            return Err(EvalError("injected leaf fault".into()));
        }
        DeltaModel::rank_cost(self.inner, rank, rows)
    }

    fn assemble(&self, rows: &[usize], costs: &[&RankCost]) -> Result<f64, EvalError> {
        self.inner.assemble(rows, costs)
    }
}

proptest! {
    // `PROPTEST_CASES` overrides (CI pins 256 in the delta-diff job).
    #![proptest_config(ProptestConfig::default())]

    /// The core differential property: a delta session fed an arbitrary
    /// interleaving of moves, acceptances, and random restarts answers
    /// bitwise-identically to full evaluation, on every app × preset.
    #[test]
    fn random_move_sequences_evaluate_bitwise_identical(
        which in 0usize..1000,
        seed in any::<u64>(),
    ) {
        let (name, model, total) = &models()[which % models().len()];
        let n = model.arch().len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut session = DeltaEvaluator::new(model);

        let mut current = random_distribution(&mut rng, *total, n);
        let mut evals = 0usize;
        while evals < 24 {
            let cand = if rng.gen_range(0u32..8) == 0 {
                // Random restart: most ranks dirty, exercising the
                // all-dirty / many-dirty paths.
                random_distribution(&mut rng, *total, n)
            } else {
                match random_move(&mut rng, &current).apply(&current) {
                    Some(c) => c,
                    None => continue,
                }
            };
            let incremental = session.try_eval_ns(&cand).expect(name);
            let full = model.try_eval_ns(&cand).expect(name);
            prop_assert_eq!(
                incremental.to_bits(), full.to_bits(),
                "{}: delta {} != full {} on {:?}", name, incremental, full, cand
            );
            if rng.gen_bool(0.5) {
                session.note_accept(&cand);
                current = cand;
            }
            evals += 1;
        }
        let stats = session.stats();
        prop_assert_eq!(stats.total(), 24, "every evaluation tallied once");
        prop_assert!(stats.delta_hits > 0, "{}: no incremental reuse in 24 evals", name);
    }

    /// Fault injection: when a leaf computation fails mid-evaluation,
    /// the error surfaces, the cache is poisoned, and every subsequent
    /// successful answer is still bitwise-identical to full evaluation
    /// — stale terms never leak.
    #[test]
    fn faults_poison_the_cache_and_never_leak_stale_terms(
        which in 0usize..1000,
        seed in any::<u64>(),
        fail_every in 5u64..12,
    ) {
        let (name, model, total) = &models()[which % models().len()];
        let n = model.arch().len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let faulty = FaultyMheta { inner: model, calls: AtomicU64::new(0), fail_every };
        let mut session = DeltaEvaluator::new(&faulty);

        let mut current = random_distribution(&mut rng, *total, n);
        let mut failures = 0usize;
        for _ in 0..32 {
            let cand = match random_move(&mut rng, &current).apply(&current) {
                Some(c) => c,
                None => continue,
            };
            match session.try_eval_ns(&cand) {
                Ok(incremental) => {
                    let full = model.try_eval_ns(&cand).expect(name);
                    prop_assert_eq!(
                        incremental.to_bits(), full.to_bits(),
                        "{}: stale terms leaked after {} failures", name, failures
                    );
                    session.note_accept(&cand);
                    current = cand;
                }
                Err(e) => {
                    prop_assert_eq!(&e.0, "injected leaf fault");
                    failures += 1;
                }
            }
        }
        let stats = session.stats();
        prop_assert!(failures > 0, "{}: fault injection never fired", name);
        prop_assert_eq!(stats.fallback_error, failures as u64);
    }

    /// Batched (scoped-thread) evaluation answers bitwise-identically
    /// to sequential full evaluation, in candidate order.
    #[test]
    fn batched_evaluation_matches_full_bitwise(
        which in 0usize..1000,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let (name, model, total) = &models()[which % models().len()];
        let n = model.arch().len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut session = DeltaEvaluator::new(model);

        let base = random_distribution(&mut rng, *total, n);
        session.try_eval_ns(&base).expect(name);
        session.note_accept(&base);

        let mut cands = Vec::new();
        while cands.len() < 9 {
            if let Some(c) = random_move(&mut rng, &base).apply(&base) {
                cands.push(c);
            }
        }
        let batched = session.eval_batch(&cands, threads);
        prop_assert_eq!(batched.len(), cands.len());
        for (cand, res) in cands.iter().zip(&batched) {
            let incremental = res.as_ref().expect(name);
            let full = model.try_eval_ns(cand).expect(name);
            prop_assert_eq!(
                incremental.to_bits(), full.to_bits(),
                "{}: batched eval diverged on {:?}", name, cand
            );
        }
    }
}

/// Shape changes and model-level errors surface identically through the
/// session and through full evaluation, and leave no stale state.
#[test]
fn shape_mismatch_and_model_errors_poison_consistently() {
    let (name, model, total) = &models()[0];
    let n = model.arch().len();
    let mut session = DeltaEvaluator::new(model);

    let base: Vec<usize> = GenBlock::block(*total, n).rows().to_vec();
    let a = session.try_eval_ns(&base).expect(name);
    assert_eq!(a.to_bits(), model.try_eval_ns(&base).unwrap().to_bits());
    session.note_accept(&base);

    // Wrong rank count: both paths must reject it.
    let wrong: Vec<usize> = base[..n - 1].to_vec();
    assert!(session.try_eval_ns(&wrong).is_err());
    assert!(model.try_eval_ns(&wrong).is_err());

    // Wrong total: likewise.
    let mut bad_total = base.clone();
    bad_total[0] += 1;
    assert!(session.try_eval_ns(&bad_total).is_err());
    assert!(model.try_eval_ns(&bad_total).is_err());

    // After the errors the cache is poisoned; the next answer must be
    // recomputed from scratch and still bitwise-exact.
    let again = session.try_eval_ns(&base).expect(name);
    assert_eq!(again.to_bits(), a.to_bits());
    let stats = session.stats();
    assert!(stats.fallback_error >= 2, "errors recorded: {stats:?}");
}
