//! Behavioral tests: the applications' *operational* structure — what
//! they actually do on the simulator, as seen by traces and hooks —
//! must match the program structures they hand the model. If an app
//! drifts from its declared shape, predictions go quietly wrong; these
//! tests make that drift loud.

use mheta::mpi::{run_app, ExecMode, HookEvent, NullRecorder, OpKind, RunOptions, ScopeKind};
use mheta::prelude::*;
use mheta::sim::EventKind;

fn quiet(n: usize) -> ClusterSpec {
    let mut s = ClusterSpec::homogeneous(n);
    s.noise.amplitude = 0.0;
    s
}

/// Count hook events matching a predicate.
fn count(rec: &mheta::mpi::VecRecorder, pred: impl Fn(&HookEvent) -> bool) -> usize {
    rec.events.iter().filter(|e| pred(e)).count()
}

#[test]
fn jacobi_ooc_issues_exactly_n_io_reads_and_writes_per_iteration() {
    let mut spec = quiet(2);
    spec.nodes[0].memory_bytes = 3 * 1024; // force OOC
    let app = Jacobi::small();
    let dist = GenBlock::block(app.rows, 2);
    let iters = 3u32;
    let run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, iters, false),
    )
    .unwrap();

    // Recompute the expected plan exactly as the app does.
    let structure = app.structure(false);
    let m = dist.rows()[0];
    let plans = mheta::core::plan_node(
        spec.nodes[0].memory_bytes,
        structure.overhead_bytes(m),
        m,
        &structure.footprint_row_bytes(),
    );
    let n_io = plans[&mheta::apps::jacobi::VAR_U].n_io as usize;
    assert!(n_io >= 2, "test premise: node 0 must chunk");

    let rec = &run.recorders[0];
    let reads = count(
        rec,
        |e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::FileRead),
    );
    let writes = count(
        rec,
        |e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::FileWrite),
    );
    // Per iteration: N_io chunk reads and N_io writes (final row folded
    // into the last chunk's flush). No compulsory load (OOC).
    assert_eq!(reads, n_io * iters as usize, "reads per iteration");
    assert_eq!(writes, n_io * iters as usize, "writes per iteration");
}

#[test]
fn jacobi_prefetch_issues_cover_all_but_first_chunk() {
    let mut spec = quiet(2);
    spec.nodes[0].memory_bytes = 3 * 1024;
    let app = Jacobi::small();
    let dist = GenBlock::block(app.rows, 2);
    let run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, 2, true),
    )
    .unwrap();
    let rec = &run.recorders[0];
    let sync_reads = count(
        rec,
        |e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::FileRead),
    );
    let issues = count(
        rec,
        |e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::PrefetchIssue),
    );
    let waits = count(
        rec,
        |e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::PrefetchWait),
    );
    // Figure 6: the first chunk is a synchronous read, every subsequent
    // chunk a prefetch with a matching wait.
    assert_eq!(sync_reads, 2, "one sync read per iteration");
    assert!(issues > 0);
    assert_eq!(issues, waits, "every issue is awaited");
}

#[test]
fn rna_receives_before_stages_and_sends_after() {
    let spec = quiet(3);
    let app = Rna::small();
    let dist = GenBlock::block(app.rows, 3);
    let run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, 1),
    )
    .unwrap();
    // Middle rank: per tile, the recv must precede the stage enter and
    // the send must follow the stage exit (the protocol Eq. 4 models).
    let rec = &run.recorders[1];
    let mut last_recv_idx = None;
    let mut pipeline_recvs = 0;
    for (i, ev) in rec.events.iter().enumerate() {
        match ev {
            HookEvent::Op { info, .. } if info.kind == OpKind::Recv && info.peer == Some(0) => {
                last_recv_idx = Some(i);
                pipeline_recvs += 1;
            }
            HookEvent::ScopeEnter {
                kind: ScopeKind::Tile,
                ..
            } => {
                assert!(
                    last_recv_idx.is_some(),
                    "tile entered before upstream boundary arrived"
                );
                last_recv_idx = None;
            }
            _ => {}
        }
    }
    assert_eq!(
        pipeline_recvs,
        app.tiles + 2, // per tile + the iteration allreduce + setup barrier
        "one upstream receive per tile plus the collectives"
    );
}

#[test]
fn instrumented_run_forces_io_on_in_core_nodes() {
    // Plain run: ample memory, zero file reads in steady state beyond
    // the compulsory load. Instrumented run: forced chunked I/O.
    let spec = quiet(2);
    let app = Cg::small();
    let dist = GenBlock::block(app.n, 2);

    let normal = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, 2),
    )
    .unwrap();
    let instrumented = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Instrument { force_ooc: true },
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, 1),
    )
    .unwrap();

    // Count file reads inside the iteration loop (after the first
    // iteration marker) — the compulsory load happens before it.
    let steady_reads = |rec: &mheta::mpi::VecRecorder| {
        let start = rec
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    HookEvent::ScopeEnter {
                        kind: ScopeKind::Iteration,
                        ..
                    }
                )
            })
            .expect("iterations are bracketed");
        rec.events[start..]
            .iter()
            .filter(|e| matches!(e, HookEvent::Op { info, .. } if info.kind == OpKind::FileRead))
            .count()
    };
    // Normal, in core: no steady-state reads.
    assert_eq!(steady_reads(&normal.recorders[0]), 0);
    // Instrumented: the paper forces I/O so l_r(A) is measurable.
    assert!(steady_reads(&instrumented.recorders[0]) >= 1);
}

#[test]
fn lanczos_reduction_messages_match_binomial_tree() {
    let spec = quiet(4);
    let app = Lanczos::small();
    let dist = GenBlock::block(app.n, 4);
    let iters = 2u32;
    let run = run_app(
        &spec,
        RunOptions {
            tracing: true,
            mode: ExecMode::Normal,
        },
        |_| NullRecorder,
        |comm| app.run(comm, &dist, iters),
    )
    .unwrap();
    // With n = 4 ranks, a reduce is 3 messages and a bcast 3 more;
    // 3 allreduces per iteration plus the setup barrier/allreduce.
    let total_msgs: u64 = run
        .traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| matches!(e.kind, EventKind::Send { .. }))
        .count() as u64;
    let per_allreduce = 6;
    let allreduces_timed = 3 * u64::from(iters);
    // Setup: one barrier (= allreduce) before t0.
    let expected = per_allreduce * (allreduces_timed + 1);
    assert_eq!(total_msgs, expected, "binomial allreduce message count");
}

#[test]
fn multigrid_streams_both_variables_when_starved() {
    let mut spec = quiet(2);
    spec.nodes[1].memory_bytes = 1024;
    let app = Multigrid::small();
    let dist = GenBlock::block(app.rows, 2);
    let run = run_app(
        &spec,
        RunOptions {
            tracing: false,
            mode: ExecMode::Normal,
        },
        |_| mheta::mpi::VecRecorder::default(),
        |comm| app.run(comm, &dist, 1),
    )
    .unwrap();
    let rec = &run.recorders[1];
    let touched: std::collections::HashSet<u32> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            HookEvent::Op { info, .. }
                if matches!(info.kind, OpKind::FileRead | OpKind::FileWrite) =>
            {
                info.var
            }
            _ => None,
        })
        .collect();
    assert!(touched.contains(&mheta::apps::multigrid::VAR_FINE));
    assert!(touched.contains(&mheta::apps::multigrid::VAR_COARSE));
}
