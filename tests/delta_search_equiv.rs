//! Search-equivalence regressions for delta evaluation: turning the
//! incremental evaluator on must not change *anything* a search does —
//! not the best distribution, not its score bits, and not even the
//! sequence of candidates visited. A recording evaluator (which
//! forwards its delta session so both modes log at the same seam) pins
//! the visited-candidate sequences; the portfolio test additionally
//! checks that delta evaluation actually engages (`delta_hits > 0`)
//! while leaving the incumbent unchanged.

use std::cell::RefCell;

use mheta::dist::{
    gbs_search, genetic_search, portfolio_search, simulated_annealing, AnnealingConfig,
    DeltaSession, EvalError, Evaluator, GbsConfig, GenBlock, GeneticConfig, PortfolioConfig,
    SearchOutcome,
};
use mheta::prelude::*;

/// Logs every candidate an inner delta session is asked to evaluate.
struct RecordingSession<'a> {
    inner: Box<dyn DeltaSession + 'a>,
    log: &'a RefCell<Vec<Vec<usize>>>,
}

impl DeltaSession for RecordingSession<'_> {
    fn try_eval_ns(&mut self, rows: &[usize]) -> Result<f64, EvalError> {
        self.log.borrow_mut().push(rows.to_vec());
        self.inner.try_eval_ns(rows)
    }

    fn eval_batch(
        &mut self,
        candidates: &[Vec<usize>],
        threads: usize,
    ) -> Vec<Result<f64, EvalError>> {
        self.log.borrow_mut().extend(candidates.iter().cloned());
        self.inner.eval_batch(candidates, threads)
    }

    fn note_accept(&mut self, rows: &[usize]) {
        self.inner.note_accept(rows);
    }

    fn stats(&self) -> mheta::dist::DeltaStats {
        self.inner.stats()
    }
}

/// An evaluator that records the visited-candidate sequence on both
/// paths: direct full evaluations land in the log via `try_eval_ns`,
/// delta evaluations via the forwarded [`RecordingSession`]. Either
/// way, one log entry per logical candidate, in visit order.
struct Recorder<'a> {
    model: &'a Mheta,
    log: RefCell<Vec<Vec<usize>>>,
}

impl<'a> Recorder<'a> {
    fn new(model: &'a Mheta) -> Self {
        Recorder {
            model,
            log: RefCell::new(Vec::new()),
        }
    }

    fn visited(&self) -> Vec<Vec<usize>> {
        self.log.borrow().clone()
    }
}

impl Evaluator for Recorder<'_> {
    fn try_eval_ns(&self, rows: &[usize]) -> Result<f64, EvalError> {
        self.log.borrow_mut().push(rows.to_vec());
        self.model.try_eval_ns(rows)
    }

    fn delta_session(&self) -> Option<Box<dyn DeltaSession + '_>> {
        let inner = self.model.delta_session()?;
        Some(Box::new(RecordingSession {
            inner,
            log: &self.log,
        }))
    }
}

fn model() -> (Mheta, usize, usize) {
    let spec = presets::dc();
    let bench = Benchmark::Jacobi(Jacobi::small());
    let model = build_model(&bench, &spec, false).expect("model builds");
    let n = spec.len();
    (model, bench.total_rows(), n)
}

/// Assert two outcomes are indistinguishable where determinism is
/// promised: best distribution, exact score bits, evaluation count,
/// and the full convergence curve.
fn assert_equivalent(on: &SearchOutcome, off: &SearchOutcome, what: &str) {
    assert_eq!(on.best.rows(), off.best.rows(), "{what}: best differs");
    assert_eq!(
        on.score_ns.to_bits(),
        off.score_ns.to_bits(),
        "{what}: score bits differ"
    );
    assert_eq!(
        on.evaluations, off.evaluations,
        "{what}: evaluation counts differ"
    );
    assert_eq!(
        on.history.len(),
        off.history.len(),
        "{what}: history lengths differ"
    );
    for (i, (a, b)) in on.history.iter().zip(&off.history).enumerate() {
        assert_eq!(a.evals, b.evals, "{what}: history[{i}].evals differs");
        assert_eq!(
            a.best_ns.to_bits(),
            b.best_ns.to_bits(),
            "{what}: history[{i}].best_ns differs"
        );
        assert_eq!(
            a.mean_ns.to_bits(),
            b.mean_ns.to_bits(),
            "{what}: history[{i}].mean_ns differs"
        );
    }
}

#[test]
fn gbs_delta_on_off_equivalent() {
    let (model, total, _) = model();
    let inputs = mheta::apps::anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let _ = total;
    let run = |delta: bool| {
        let rec = Recorder::new(&model);
        let out = gbs_search(
            &path,
            &rec,
            GbsConfig {
                max_evals: 48,
                delta,
                ..GbsConfig::default()
            },
        );
        (out, rec.visited())
    };
    let (on, seq_on) = run(true);
    let (off, seq_off) = run(false);
    assert_equivalent(&on, &off, "gbs");
    assert_eq!(seq_on, seq_off, "gbs: visited-candidate sequences differ");
    assert_eq!(off.delta.total(), 0, "delta off must tally nothing");
}

#[test]
fn genetic_delta_on_off_equivalent() {
    let (model, total, n) = model();
    let run = |delta: bool| {
        let rec = Recorder::new(&model);
        let out = genetic_search(
            total,
            n,
            &[],
            &rec,
            GeneticConfig {
                max_evals: 64,
                delta,
                ..GeneticConfig::default()
            },
        );
        (out, rec.visited())
    };
    let (on, seq_on) = run(true);
    let (off, seq_off) = run(false);
    assert_equivalent(&on, &off, "genetic");
    assert_eq!(
        seq_on, seq_off,
        "genetic: visited-candidate sequences differ"
    );
    assert!(on.delta.total() > 0, "delta session never engaged");
}

#[test]
fn annealing_delta_on_off_equivalent() {
    let (model, total, n) = model();
    let start = GenBlock::block(total, n);
    let run = |delta: bool| {
        let rec = Recorder::new(&model);
        let out = simulated_annealing(
            &start,
            &rec,
            AnnealingConfig {
                max_evals: 64,
                delta,
                ..AnnealingConfig::default()
            },
        );
        (out, rec.visited())
    };
    let (on, seq_on) = run(true);
    let (off, seq_off) = run(false);
    assert_equivalent(&on, &off, "annealing");
    assert_eq!(
        seq_on, seq_off,
        "annealing: visited-candidate sequences differ"
    );
    // SA perturbs single boundaries against an accepted base: the
    // delta fast path must actually fire.
    assert!(
        on.delta.delta_hits > 0,
        "annealing never hit the delta path"
    );
}

#[test]
fn portfolio_delta_engages_without_changing_the_incumbent() {
    let (model, _, _) = model();
    let inputs = mheta::apps::anchor_inputs(&model);
    let path = SpectrumPath::new(&inputs);
    let cfg = |delta: bool| PortfolioConfig {
        max_evals_per_strategy: 40,
        delta,
        ..PortfolioConfig::default()
    };
    let on = portfolio_search(&path, &model, cfg(true));
    let off = portfolio_search(&path, &model, cfg(false));
    assert_eq!(
        on.best.best.rows(),
        off.best.best.rows(),
        "portfolio incumbent changed"
    );
    assert_eq!(
        on.best.score_ns.to_bits(),
        off.best.score_ns.to_bits(),
        "portfolio incumbent score changed"
    );
    assert_eq!(on.winner, off.winner, "portfolio winner changed");
    assert!(
        on.delta.delta_hits > 0,
        "portfolio never hit the delta path"
    );
    assert_eq!(off.delta.total(), 0, "delta off must tally nothing");
    // Random is the full-eval control arm: its run contributes no
    // delta tallies even when delta is on.
    let random = on
        .runs
        .iter()
        .find(|r| r.strategy.name() == "random")
        .expect("random strategy present");
    assert_eq!(
        random.outcome.delta.total(),
        0,
        "random must stay full-eval"
    );
}
