//! Property-based guarantees for the phi-accrual failure detector:
//! **zero false positives** on fault-free runs across every
//! architecture preset and a wide seed sweep, and a bounded detection
//! latency once a persistent slowdown (or a crash) is injected.
//!
//! The detector consumes per-row compute-time progress reports, so the
//! synthetic series here is exactly what a run produces: each node's
//! per-row cost under the preset's cost model, perturbed by the same
//! deterministic noise stream the engine uses.

use mheta::mpi::detector::{DetectorConfig, HealthState, PhiAccrualDetector};
use mheta::sim::noise::NoiseStream;
use mheta::sim::presets::seventeen_architectures;
use mheta::sim::ClusterSpec;
use proptest::prelude::*;

/// Per-iteration fault-free per-row samples for every node of `spec`,
/// derived like the engine derives compute costs: base per-row cost
/// scaled by the node's deterministic noise stream.
fn fault_free_series(spec: &ClusterSpec, seed: u64, iters: u32) -> Vec<Vec<f64>> {
    let n = spec.len();
    let mut streams: Vec<NoiseStream> = (0..n)
        .map(|r| NoiseStream::new(&spec.noise, seed, r))
        .collect();
    (0..iters)
        .map(|_| {
            (0..n)
                .map(|r| {
                    let base = spec.compute_ns_per_unit / spec.nodes[r].cpu_power;
                    streams[r].perturb(base * 100.0)
                })
                .collect()
        })
        .collect()
}

fn run_series(det: &mut PhiAccrualDetector, series: &[Vec<f64>]) {
    for (it, samples) in series.iter().enumerate() {
        det.observe(it as u32, it as u64 * 1_000_000, samples);
    }
}

/// Exhaustive (non-random) sweep: all 17 presets x 16 seeds must never
/// leave Healthy on a fault-free series.
#[test]
fn zero_false_positives_all_presets_sixteen_seeds() {
    for spec in seventeen_architectures() {
        for seed in 1..=16u64 {
            let series = fault_free_series(&spec, seed, 120);
            let mut det = PhiAccrualDetector::new(spec.len(), DetectorConfig::default());
            run_series(&mut det, &series);
            assert!(
                det.transitions().is_empty(),
                "{} seed {seed}: false positive {:?}",
                spec.name,
                det.transitions()
            );
            for m in 0..spec.len() {
                assert_eq!(
                    det.state(m),
                    HealthState::Healthy,
                    "{} seed {seed}",
                    spec.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random seeds and amplified (but still benign, <= 0.10) noise:
    /// the fault-free guarantee must not depend on the preset's tame
    /// default amplitude.
    #[test]
    fn zero_false_positives_under_noise(
        seed in 1u64..10_000,
        preset in 0usize..17,
        amplitude in 0.0f64..0.10,
        iters in 20u32..200,
    ) {
        let mut spec = seventeen_architectures().swap_remove(preset);
        spec.noise.amplitude = amplitude;
        let series = fault_free_series(&spec, seed, iters);
        let mut det = PhiAccrualDetector::new(spec.len(), DetectorConfig::default());
        run_series(&mut det, &series);
        prop_assert!(
            det.transitions().is_empty(),
            "{} amp {amplitude}: {:?}", spec.name, det.transitions()
        );
    }

    /// A persistent slowdown of factor >= 2 injected after warmup is
    /// confirmed Degraded within `confirm_samples` iterations of onset
    /// (one Suspected sample per confirmation step, no overshoot).
    #[test]
    fn detection_latency_is_bounded(
        seed in 1u64..10_000,
        preset in 0usize..17,
        victim in 0usize..8,
        onset in 5u32..60,
        factor in 2.0f64..8.0,
    ) {
        let spec = seventeen_architectures().swap_remove(preset);
        prop_assume!(victim < spec.len());
        let cfg = DetectorConfig::default();
        let iters = onset + 20;
        let mut series = fault_free_series(&spec, seed, iters);
        for (it, samples) in series.iter_mut().enumerate() {
            if it as u32 >= onset {
                samples[victim] *= factor;
            }
        }
        let mut det = PhiAccrualDetector::new(spec.len(), cfg);
        run_series(&mut det, &series);
        let confirm = det
            .transitions()
            .iter()
            .find(|t| t.member == victim && t.to == HealthState::Degraded);
        prop_assert!(confirm.is_some(), "{}: never confirmed", spec.name);
        let confirm = confirm.unwrap();
        // First suspect sample lands at onset; confirmation takes at
        // most confirm_samples - 1 further samples.
        prop_assert!(
            confirm.at_iteration < onset + cfg.confirm_samples,
            "{}: confirmed at {} for onset {onset}",
            spec.name,
            confirm.at_iteration
        );
        // No other member is disturbed.
        for m in 0..spec.len() {
            if m != victim {
                prop_assert_eq!(det.state(m), HealthState::Healthy);
            }
        }
        prop_assert_eq!(det.detection_latencies_ns().len(), 1);
    }

    /// An injected crash (missed heartbeat) is Dead immediately and the
    /// state is absorbing regardless of later samples.
    #[test]
    fn crash_detection_is_immediate_and_absorbing(
        seed in 1u64..10_000,
        preset in 0usize..17,
        victim in 0usize..8,
        crash_at in 1u32..40,
    ) {
        let spec = seventeen_architectures().swap_remove(preset);
        prop_assume!(victim < spec.len());
        let series = fault_free_series(&spec, seed, crash_at + 10);
        let mut det = PhiAccrualDetector::new(spec.len(), DetectorConfig::default());
        for (it, samples) in series.iter().enumerate() {
            let it = it as u32;
            if it == crash_at {
                let t = det.mark_dead(victim, it, u64::from(it) * 1_000_000);
                prop_assert!(t.is_some_and(|t| t.to == HealthState::Dead));
            }
            det.observe(it, u64::from(it) * 1_000_000, samples);
        }
        prop_assert_eq!(det.state(victim), HealthState::Dead);
        prop_assert!(det.mark_dead(victim, 99, 0).is_none(), "absorbing");
        // The crash is the only transition on a fault-free background.
        prop_assert_eq!(det.transitions().len(), 1);
    }
}
