//! The repository's headline check, mirroring the paper's headline
//! claim: "MHETA is on average 98% accurate in predicting execution
//! times" (§5). These tests assert accuracy bounds for the reduced
//! test-size applications over heterogeneous clusters with noise,
//! cache effects, and warm reads all enabled.

use mheta::prelude::*;
use mheta::sim::NodeSpec;

fn arch_like(name: &str) -> ClusterSpec {
    // 4-node miniatures of the Table 1 configurations, scaled to the
    // small app instances (whose Blk shares are a few KiB).
    let mut spec = ClusterSpec::homogeneous(4);
    spec.name = name.into();
    match name {
        "DC" => {
            for n in &mut spec.nodes {
                n.memory_bytes = 1 << 20;
            }
            spec.nodes[0].cpu_power = 0.5;
            spec.nodes[3].cpu_power = 1.75;
        }
        "IO" => {
            for n in &mut spec.nodes[2..] {
                n.memory_bytes = 3 * 1024;
                *n = n.clone().with_io_factor(3.0);
            }
        }
        "HY" => {
            spec.nodes[0].cpu_power = 1.5;
            spec.nodes[1].cpu_power = 0.7;
            spec.nodes[2].memory_bytes = 3 * 1024;
            spec.nodes[3].memory_bytes = 4 * 1024;
            spec.nodes[3] = spec.nodes[3].clone().with_io_factor(2.0);
        }
        _ => unreachable!(),
    }
    spec
}

fn sweep_errors(bench: &Benchmark, spec: &ClusterSpec, iters: u32) -> Vec<f64> {
    let model = build_model(bench, spec, false)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), spec.name));
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::full(&inputs);
    (0..=8)
        .map(|k| {
            let dist = path.at(f64::from(k) / 8.0);
            let pred = model.predict(dist.rows()).unwrap().app_secs(iters);
            let act = run_measured(bench, spec, &dist, iters, false).unwrap().secs;
            percent_difference(pred, act)
        })
        .collect()
}

#[test]
fn average_accuracy_is_paper_grade() {
    let mut all = Vec::new();
    for name in ["DC", "IO", "HY"] {
        let spec = arch_like(name);
        for bench in Benchmark::small_four() {
            all.extend(sweep_errors(&bench, &spec, 3));
        }
    }
    let avg = all.iter().sum::<f64>() / all.len() as f64;
    let max = all.iter().copied().fold(0.0f64, f64::max);
    // Paper: ~2% average error, up to ~17% worst points.
    assert!(
        avg < 6.0,
        "average error {avg:.2}% exceeds paper-grade bound"
    );
    assert!(max < 25.0, "worst-case error {max:.2}% is out of family");
}

#[test]
fn multigrid_extension_is_predictable_too() {
    let spec = arch_like("HY");
    let bench = Benchmark::Multigrid(Multigrid::small());
    let errors = sweep_errors(&bench, &spec, 3);
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(avg < 8.0, "multigrid average error {avg:.2}%");
}

#[test]
fn instrumented_distribution_is_nearly_exact() {
    // At the instrumented distribution (Blk) the only error sources are
    // noise and warm reads; the paper reports ~1% there.
    let spec = arch_like("DC");
    for bench in Benchmark::small_four() {
        let model = build_model(&bench, &spec, false).unwrap();
        let blk = GenBlock::block(bench.total_rows(), 4);
        let pred = model.predict(blk.rows()).unwrap().app_secs(4);
        let act = run_measured(&bench, &spec, &blk, 4, false).unwrap().secs;
        let diff = percent_difference(pred, act);
        assert!(
            diff < 5.0,
            "{} at Blk on DC: {diff:.2}% (pred {pred:.4}s act {act:.4}s)",
            bench.name()
        );
    }
}

#[test]
fn worst_distribution_costs_real_time() {
    // The motivation for the whole system (§5.3): the gap between the
    // best and worst distribution is substantial on hybrid clusters.
    let spec = arch_like("HY");
    let bench = Benchmark::Jacobi(Jacobi::small());
    let model = build_model(&bench, &spec, false).unwrap();
    let inputs = anchor_inputs(&model);
    let path = SpectrumPath::full(&inputs);
    let times: Vec<f64> = (0..=8)
        .map(|k| {
            let dist = path.at(f64::from(k) / 8.0);
            run_measured(&bench, &spec, &dist, 3, false).unwrap().secs
        })
        .collect();
    let best = times.iter().copied().fold(f64::MAX, f64::min);
    let worst = times.iter().copied().fold(0.0f64, f64::max);
    assert!(
        worst / best > 1.3,
        "distribution choice should matter: best {best:.4}s worst {worst:.4}s"
    );
}

#[test]
fn node_spec_builder_produces_heterogeneity() {
    let n = NodeSpec::default()
        .with_cpu_power(2.0)
        .with_memory(1234)
        .with_io_factor(3.0);
    assert_eq!(n.cpu_power, 2.0);
    assert_eq!(n.memory_bytes, 1234);
    assert!(n.io_read_ns_per_byte > NodeSpec::default().io_read_ns_per_byte);
}
