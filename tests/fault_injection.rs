//! End-to-end behaviour of the deterministic fault-injection layer:
//! seeded fault schedules, retry/backoff convergence in the MPI layer,
//! typed errors when resilience is exhausted, fault visibility in
//! traces and hooks, degradation-aware search, and the controlled decay
//! of MHETA's accuracy as fault rates rise.

use std::cell::Cell;

use mheta::dist::{
    gbs_search, genetic_search, random_search, simulated_annealing, AnnealingConfig, EvalError,
    Evaluator, FallibleFn, GbsConfig, GeneticConfig, RandomConfig,
};
use mheta::mpi::{
    run_app, ExecMode, HookEvent, NullRecorder, RetryPolicy, RunOptions, VecRecorder,
};
use mheta::prelude::*;
use mheta::sim::{FaultKind, FaultSpec, SimError};

fn quiet(n: usize, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(n);
    spec.noise.amplitude = 0.0;
    spec.seed = seed;
    spec
}

/// Moderate rates: every class fires in a typical run, yet the default
/// retry policy always converges.
fn moderate_faults() -> FaultSpec {
    FaultSpec {
        disk_read_fault_rate: 0.10,
        disk_write_fault_rate: 0.05,
        msg_resend_rate: 0.05,
        slowdown_rate: 0.20,
        slowdown_factor: 1.5,
        slowdown_period_ns: 1.0e5,
        mem_pressure_rate: 0.10,
        mem_pressure_bytes: 64 * 1024,
        ..FaultSpec::default()
    }
}

#[test]
fn fault_schedules_are_seed_deterministic() {
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let mut spec = quiet(4, 9);
    spec.faults = moderate_faults();

    let a = run_measured(&bench, &spec, &dist, 3, false).unwrap();
    let b = run_measured(&bench, &spec, &dist, 3, false).unwrap();
    assert_eq!(a.secs, b.secs, "same seed must give identical timelines");
    assert_eq!(a.per_rank_secs, b.per_rank_secs);
    assert_eq!(a.check, b.check);

    spec.seed = 10;
    let c = run_measured(&bench, &spec, &dist, 3, false).unwrap();
    assert_ne!(a.secs, c.secs, "a different seed must reshuffle faults");
    assert_eq!(a.check, c.check, "numerics are seed-independent");
}

#[test]
fn retries_converge_to_fault_free_numerics_at_a_time_cost() {
    let bench = Benchmark::Cg(Cg::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let clean = quiet(4, 17);
    let mut faulty = clean.clone();
    faulty.faults = moderate_faults();

    let a = run_measured(&bench, &clean, &dist, 3, false).unwrap();
    let b = run_measured(&bench, &faulty, &dist, 3, false).unwrap();
    assert_eq!(
        a.check, b.check,
        "retried faults must not perturb the computed result"
    );
    assert!(
        b.secs > a.secs,
        "faults only add virtual time: {} !> {}",
        b.secs,
        a.secs
    );
}

#[test]
fn faults_are_visible_in_traces_and_retry_hooks() {
    let mut spec = quiet(4, 3);
    spec.faults = FaultSpec {
        disk_read_fault_rate: 0.30,
        disk_write_fault_rate: 0.20,
        msg_resend_rate: 0.30,
        slowdown_rate: 0.50,
        slowdown_factor: 1.5,
        slowdown_period_ns: 1.0e4,
        mem_pressure_rate: 0.0,
        mem_pressure_bytes: 0,
        ..FaultSpec::default()
    };

    let run = run_app(
        &spec,
        RunOptions {
            tracing: true,
            mode: ExecMode::Normal,
        },
        |_| VecRecorder::default(),
        |comm| {
            // Rates this aggressive can exhaust the default 3-attempt
            // policy; give the test a deep retry budget so every disk
            // fault is absorbed.
            comm.set_retry_policy(RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            });
            let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
            comm.ctx().disk.create(1, data.len());
            comm.begin_section(0);
            comm.begin_stage(0);
            for round in 0..16u32 {
                comm.file_write(1, 0, &data)?;
                let mut out = vec![0.0; 256];
                comm.file_read(1, 0, &mut out)?;
                assert_eq!(out, data, "retries must deliver the real bytes");
                comm.compute(2_000.0, u64::MAX);
                let to = (comm.rank() + 1) % comm.size();
                let from = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send_f64s(to, round, &data[..32])?;
                let _ = comm.recv_f64s(from, round)?;
            }
            comm.end_stage(0);
            comm.end_section(0);
            Ok(())
        },
    )
    .unwrap();

    // Every injected fault is a first-class trace event...
    let faults: Vec<FaultKind> = run.traces.iter().flat_map(|t| t.faults()).collect();
    assert!(!faults.is_empty(), "no faults recorded in any trace");
    let has = |p: fn(&FaultKind) -> bool| faults.iter().any(p);
    assert!(has(|f| matches!(f, FaultKind::ReadFault { .. })));
    assert!(has(|f| matches!(f, FaultKind::WriteFault { .. })));
    assert!(has(|f| matches!(f, FaultKind::MessageResend { .. })));
    assert!(has(|f| matches!(f, FaultKind::Slowdown { .. })));
    for t in &run.traces {
        assert!(t.is_monotone(), "rank {} trace not monotone", t.rank);
    }

    // ...and every absorbed disk fault surfaces as a Retry hook event.
    let retries: usize = run
        .recorders
        .iter()
        .map(|r| {
            r.events
                .iter()
                .filter(|e| matches!(e, HookEvent::Retry { .. }))
                .count()
        })
        .sum();
    let disk_faults = faults
        .iter()
        .filter(|f| {
            matches!(
                f,
                FaultKind::ReadFault { .. } | FaultKind::WriteFault { .. }
            )
        })
        .count();
    assert_eq!(
        retries, disk_faults,
        "each transient disk fault must be mirrored by one Retry hook"
    );
}

#[test]
fn exhausted_retries_surface_a_typed_error() {
    let mut spec = quiet(2, 3);
    spec.faults.disk_read_fault_rate = 0.97;

    let err = run_app(
        &spec,
        RunOptions::default(),
        |_| NullRecorder,
        |comm| {
            comm.set_retry_policy(RetryPolicy::none());
            comm.ctx().disk.create(5, 8);
            comm.file_write(5, 0, &[1.0; 8])?;
            let mut out = [0.0; 8];
            comm.file_read(5, 0, &mut out)?;
            Ok(())
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::TransientIo { var: 5, .. }),
        "expected TransientIo on var 5, got {err}"
    );
}

#[test]
fn blocking_waits_time_out_with_a_typed_error() {
    let mut spec = quiet(2, 1);
    spec.wait_timeout_ms = 50;

    let err = run_app(
        &spec,
        RunOptions::default(),
        |_| NullRecorder,
        |comm| {
            if comm.rank() == 0 {
                // Stay busy on the host past the backstop without ever
                // blocking in the simulator, so the deadlock detector
                // cannot fire before rank 1's wall-clock timeout.
                std::thread::sleep(std::time::Duration::from_millis(400));
                comm.send_scalar(1, 9, 1.0)?;
            } else {
                let _ = comm.recv_scalar(0, 9)?;
            }
            Ok(())
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Timeout {
                rank: 1,
                waited_ms: 50,
                ..
            }
        ),
        "expected a 50 ms timeout on rank 1, got {err}"
    );
}

#[test]
fn all_searches_finish_under_eval_failures_and_report_counts() {
    let spec = quiet(4, 29);
    let bench = Benchmark::Cg(Cg::small());
    let model = build_model(&bench, &spec, false).unwrap();
    let total = bench.total_rows();
    let n = spec.len();
    let blk = GenBlock::block(total, n);
    let path = SpectrumPath::new(&anchor_inputs(&model));

    // Every fifth model evaluation fails: a 20% injected failure rate.
    let calls = Cell::new(0usize);
    let flaky = FallibleFn(|rows: &[usize]| {
        calls.set(calls.get() + 1);
        if calls.get().is_multiple_of(5) {
            Err(EvalError("injected model failure".into()))
        } else {
            model.try_eval_ns(rows)
        }
    });

    let outcomes = vec![
        (
            "random",
            random_search(
                total,
                n,
                &flaky,
                RandomConfig {
                    max_evals: 60,
                    ..Default::default()
                },
            ),
        ),
        (
            "annealing",
            simulated_annealing(
                &blk,
                &flaky,
                AnnealingConfig {
                    max_evals: 60,
                    ..Default::default()
                },
            ),
        ),
        (
            "genetic",
            genetic_search(
                total,
                n,
                std::slice::from_ref(&blk),
                &flaky,
                GeneticConfig {
                    max_evals: 60,
                    ..Default::default()
                },
            ),
        ),
        (
            "gbs",
            gbs_search(
                &path,
                &flaky,
                GbsConfig {
                    max_evals: 60,
                    ..Default::default()
                },
            ),
        ),
    ];
    for (name, out) in outcomes {
        assert!(
            out.failed_evals * 10 >= out.evaluations,
            "{name}: {} failed of {} is under 10%",
            out.failed_evals,
            out.evaluations
        );
        assert!(
            out.score_ns.is_finite(),
            "{name}: search never recovered a finite score"
        );
        assert_eq!(out.best.total(), total, "{name}: invalid best distribution");
        assert!(out.last_failure.is_some(), "{name}: failure not reported");
    }

    // With retries enabled the same once-per-five pattern is always
    // absorbed on the second attempt: nothing fails outright.
    calls.set(0);
    let out = random_search(
        total,
        n,
        &flaky,
        RandomConfig {
            max_evals: 60,
            eval_retries: 2,
            ..Default::default()
        },
    );
    assert_eq!(out.failed_evals, 0, "retries should absorb every failure");
    assert!(out.retried_evals > 0);
}

mod crash_stop {
    //! End-to-end crash-stop scenarios: a rank dies mid-run, survivors
    //! detect it (no hang), roll back to the last checkpoint,
    //! redistribute the dead rank's rows, re-predict, and complete.
    use super::*;
    use mheta::apps::{recovery_report, repredict_after_crash, run_resilient};
    use mheta::mpi::TAG_COLLECTIVE_BASE;
    use mheta::obs::{perfetto_trace_with_recovery, AuditReport};
    use mheta::sim::{CrashSpec, EventKind};

    fn crashy(seed: u64, crashes: Vec<CrashSpec>, interval: u32) -> ClusterSpec {
        let mut spec = quiet(4, seed);
        spec.faults.crashes = crashes;
        spec.faults.checkpoint_interval = interval;
        spec
    }

    /// The crash-free residual of the same app/distribution, for
    /// comparison. Recovery replays identical values; only the
    /// shrunken survivor reduction tree reassociates the final sum.
    fn crash_free_check(app: &Jacobi, spec: &ClusterSpec, dist: &GenBlock, iters: u32) -> f64 {
        let mut clean = spec.clone();
        clean.faults = mheta::sim::FaultSpec::default();
        run_measured(&Benchmark::Jacobi(app.clone()), &clean, dist, iters, false)
            .unwrap()
            .check
    }

    #[test]
    fn crash_after_first_checkpoint_rolls_back_and_completes() {
        let app = Jacobi::small();
        let dist = GenBlock::block(app.rows, 4);
        let spec = crashy(11, vec![CrashSpec::at_iteration(2, 5)], 3);
        let run = run_resilient(&app, &spec, &dist, 10).unwrap();
        let report = recovery_report(&run, 10).expect("a recovery happened");
        assert_eq!(report.dead, vec![2]);
        assert_eq!(report.rollback_iteration, 3, "last checkpoint before it 5");
        assert!(report.recovery_ns.iter().all(|&ns| ns > 0.0));
        // Survivors finished the full run with the right answer.
        let expect = crash_free_check(&app, &spec, &dist, 10);
        let rel = (run.measured.check - expect).abs() / expect.abs();
        assert!(rel < 1e-12, "residual off by {rel:e}");
        // The dead rank's rows were re-spread over the survivors.
        let survivor = run.outcomes.iter().find(|o| o.alive).unwrap();
        assert_eq!(survivor.final_rows.iter().sum::<usize>(), app.rows);
        assert_eq!(survivor.final_rows[2], 0, "dead rank holds no rows");
    }

    #[test]
    fn crash_before_first_checkpoint_restarts_from_initial_state() {
        let app = Jacobi::small();
        let dist = GenBlock::block(app.rows, 4);
        let spec = crashy(13, vec![CrashSpec::at_iteration(1, 0)], 4);
        let run = run_resilient(&app, &spec, &dist, 6).unwrap();
        let report = recovery_report(&run, 6).expect("a recovery happened");
        assert_eq!(report.dead, vec![1]);
        assert_eq!(report.rollback_iteration, 0, "nothing checkpointed yet");
        let expect = crash_free_check(&app, &spec, &dist, 6);
        let rel = (run.measured.check - expect).abs() / expect.abs();
        assert!(rel < 1e-12, "residual off by {rel:e}");
    }

    #[test]
    fn crash_during_a_collective_is_detected_without_hanging() {
        let app = Jacobi::small();
        let dist = GenBlock::block(app.rows, 4);
        // Find, on a crash-free run, when the victim enters the
        // residual reduction of iteration ~4, and kill it right there.
        let clean = crashy(17, vec![], 3);
        let probe = run_resilient(&app, &clean, &dist, 10).unwrap();
        let collective_start = probe.traces[2]
            .events
            .iter()
            .filter(|e| {
                matches!(&e.kind, EventKind::Recv { tag, .. } | EventKind::Send { tag, .. }
                         if *tag >= TAG_COLLECTIVE_BASE)
            })
            .nth(8)
            .expect("victim participates in collectives")
            .start
            .as_nanos();
        let mut spec = clean;
        spec.faults.crashes = vec![CrashSpec {
            rank: 2,
            at_iteration: None,
            at_time_ns: Some(collective_start + 1),
        }];
        let run = run_resilient(&app, &spec, &dist, 10).unwrap();
        let report = recovery_report(&run, 10).expect("a recovery happened");
        assert_eq!(report.dead, vec![2]);
        assert!(!run.outcomes[2].alive);
        let expect = crash_free_check(&app, &spec, &dist, 10);
        let rel = (run.measured.check - expect).abs() / expect.abs();
        assert!(rel < 1e-12, "residual off by {rel:e}");
    }

    #[test]
    fn two_staggered_crashes_both_recover() {
        let app = Jacobi::small();
        let dist = GenBlock::block(app.rows, 4);
        let spec = crashy(
            19,
            vec![CrashSpec::at_iteration(1, 3), CrashSpec::at_iteration(3, 7)],
            2,
        );
        let run = run_resilient(&app, &spec, &dist, 10).unwrap();
        let report = recovery_report(&run, 10).expect("recoveries happened");
        assert_eq!(report.dead, vec![1, 3]);
        let expect = crash_free_check(&app, &spec, &dist, 10);
        let rel = (run.measured.check - expect).abs() / expect.abs();
        assert!(rel < 1e-12, "residual off by {rel:e}");
        let survivor = run.outcomes.iter().find(|o| o.alive).unwrap();
        assert_eq!(survivor.final_rows[1] + survivor.final_rows[3], 0);
        assert_eq!(survivor.final_rows.iter().sum::<usize>(), app.rows);
    }

    #[test]
    fn post_failure_reprediction_tracks_the_simulated_post_failure_makespan() {
        // The paper-default grid: at toy sizes the fixed per-iteration
        // agreement collective (absent from the model) dominates.
        let app = Jacobi::default();
        let dist = GenBlock::block(app.rows, 4);
        let iters = 12;
        let mut spec = crashy(23, vec![CrashSpec::at_iteration(2, 5)], 3);
        for node in &mut spec.nodes {
            node.memory_bytes = 8 * 1024 * 1024; // in-core driver: shares must fit
        }
        let run = run_resilient(&app, &spec, &dist, iters).unwrap();
        let report = recovery_report(&run, iters).expect("a recovery happened");
        let survivor = run.outcomes.iter().find(|o| o.alive).unwrap();
        let pred = repredict_after_crash(&app, &spec, &report.dead, &survivor.final_rows).unwrap();
        let predicted_post_ns = pred.iteration_ns * f64::from(report.remaining_iters);
        let err = percent_difference(predicted_post_ns, report.actual_post_ns);
        assert!(
            err < 5.0,
            "post-failure re-prediction off by {err:.2}%: predicted {predicted_post_ns} vs actual {}",
            report.actual_post_ns
        );
    }

    #[test]
    fn recovery_time_is_distinct_audit_terms_and_a_perfetto_track() {
        let app = Jacobi::small();
        let dist = GenBlock::block(app.rows, 4);
        let iters = 10;
        let mut clean = quiet(4, 29);
        clean.noise.amplitude = 0.0;
        let model = build_model(&Benchmark::Jacobi(app.clone()), &clean, false).unwrap();
        let pred = model.predict(dist.rows()).unwrap();
        let spec = crashy(29, vec![CrashSpec::at_iteration(2, 5)], 3);
        let run = run_resilient(&app, &spec, &dist, iters).unwrap();
        let spans: Vec<_> = run.outcomes.iter().map(|o| o.spans.clone()).collect();

        // Audit: the recovery terms carry exactly the span time, and
        // the twelve actual terms still partition each window exactly.
        let report =
            AuditReport::audit_with_recovery(&pred, iters, &run.traces, &run.windows, &spans);
        for (rank, audit) in report.ranks.iter().enumerate() {
            assert_eq!(audit.actual_total_ns(), audit.window_ns);
            let (t0, t1) = run.windows[rank];
            for kind in [
                RecoveryKind::Checkpoint,
                RecoveryKind::Rollback,
                RecoveryKind::Redistribution,
                RecoveryKind::Reprediction,
            ] {
                let span_ns: u64 = spans[rank]
                    .iter()
                    .filter(|s| s.kind == kind)
                    .map(|s| s.end_ns.min(t1).saturating_sub(s.start_ns.max(t0)))
                    .sum();
                let line = audit
                    .lines
                    .iter()
                    .find(|l| l.term == kind.name())
                    .expect("recovery term present");
                assert_eq!(line.actual_ns, span_ns, "rank {rank} {} term", kind.name());
                assert_eq!(line.predicted_ns, 0.0, "recovery is never predicted");
            }
        }
        let survivor_rank = run.outcomes.iter().position(|o| o.alive).unwrap();
        assert!(
            report.ranks[survivor_rank]
                .lines
                .iter()
                .filter(|l| matches!(l.term, "rollback" | "redistribution" | "reprediction"))
                .all(|l| l.actual_ns > 0),
            "survivors must show all three recovery phases"
        );

        // Perfetto: a dedicated tid-2 track whose slices are exactly
        // the recovery spans.
        let doc = perfetto_trace_with_recovery(&run.traces, &run.hooks, &spans);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let recovery_slices = events
            .iter()
            .filter(|e| e.get("cat").and_then(serde::Value::as_str) == Some("recovery"))
            .count();
        let total_spans: usize = spans.iter().map(Vec::len).sum();
        assert_eq!(recovery_slices, total_spans);
    }
}

#[test]
fn prediction_error_degrades_smoothly_with_fault_rate() {
    let bench = Benchmark::Jacobi(Jacobi::small());
    let clean = quiet(4, 21);
    let model = build_model(&bench, &clean, false).unwrap();
    let blk = GenBlock::block(bench.total_rows(), 4);
    let iters = 4;
    let predicted = model.predict(blk.rows()).unwrap().app_secs(iters);

    let mut actuals = Vec::new();
    let mut errors = Vec::new();
    for rate in [0.0, 0.15, 0.30, 0.45] {
        let mut spec = clean.clone();
        spec.faults.slowdown_rate = rate;
        spec.faults.slowdown_factor = 1.6;
        spec.faults.slowdown_period_ns = 1.0e5;
        let actual = run_measured(&bench, &spec, &blk, iters, false)
            .unwrap()
            .secs;
        actuals.push(actual);
        errors.push(percent_difference(predicted, actual));
    }

    // The slowdown windows at a lower rate are a subset of those at a
    // higher rate (stateless hash thresholding), so degradation is
    // monotone: more background load, longer runs, larger model error.
    assert!(errors[0] < 10.0, "clean-run error too large: {errors:?}");
    for w in actuals.windows(2) {
        assert!(
            w[1] >= w[0] * 0.999,
            "actual time decreased with fault rate: {actuals:?}"
        );
    }
    assert!(
        actuals[3] > actuals[0],
        "heaviest fault rate did not slow the run: {actuals:?}"
    );
    for w in errors.windows(2) {
        assert!(
            w[1] >= w[0] - 1.0,
            "error fell sharply as faults rose: {errors:?}"
        );
    }
    assert!(
        errors[3] > errors[0],
        "error did not grow with fault rate: {errors:?}"
    );
}
