//! End-to-end behaviour of the observability layer (`mheta-obs`):
//! metrics partition exactness, critical-path reconstruction against
//! the simulated makespan, and golden-file stability of the Perfetto
//! trace-event export.

use mheta::obs::{perfetto, CriticalPath, Metrics, SegmentKind};
use mheta::prelude::*;
use serde::Value;

/// A 4-node cluster where ranks 2-3 are memory-starved: they stream
/// their grid from disk, so the run is disk-bound end to end.
fn starved(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::homogeneous(4);
    spec.noise.amplitude = 0.0;
    spec.seed = seed;
    spec.nodes[2].memory_bytes = 3 * 1024;
    spec.nodes[3].memory_bytes = 3 * 1024;
    spec
}

#[test]
fn critical_path_partitions_jacobi_makespan_exactly() {
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let run = run_observed(&bench, &starved(11), &dist, 3, false).unwrap();

    let makespan: u64 = run
        .traces
        .iter()
        .map(|t| t.finish.as_nanos())
        .max()
        .unwrap();
    let path = CriticalPath::compute(&run.traces);

    // The acceptance bar: segment durations sum to the simulated
    // makespan within 1 ns on a fault-free run (they are exact).
    assert_eq!(path.makespan.as_nanos(), makespan);
    assert!(
        path.total_ns().abs_diff(makespan) <= 1,
        "path {} vs makespan {}",
        path.total_ns(),
        makespan
    );

    // Segments are a contiguous forward partition of [0, makespan].
    let mut t = 0;
    for s in &path.segments {
        assert_eq!(s.start.as_nanos(), t, "contiguous at {t}");
        assert!(s.end > s.start, "no zero-length segments");
        t = s.end.as_nanos();
    }
    assert_eq!(t, makespan);
}

#[test]
fn critical_path_identifies_the_slowest_ranks_dominant_cost() {
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let run = run_observed(&bench, &starved(11), &dist, 3, false).unwrap();

    let path = CriticalPath::compute(&run.traces);
    let metrics = Metrics::from_traces(&run.traces);
    let slowest = &metrics.breakdowns[path.slowest_rank];

    // The starved ranks stream from disk, so both views must agree the
    // run is disk-bound: the slowest rank's largest bucket and the
    // path's dominant segment kind.
    assert_eq!(slowest.dominant().0, "disk");
    let dom = path.dominant_kind().unwrap();
    assert!(
        matches!(dom, SegmentKind::Disk | SegmentKind::DiskTransfer),
        "path dominant kind {dom:?} should be a disk kind"
    );
    assert!(path
        .report()
        .contains(&format!("dominant: {}", dom.label())));

    // The slowest rank carries the largest share of the path.
    let share = path.rank_share_ns(path.slowest_rank);
    assert!(share > path.makespan.as_nanos() / 4);
}

#[test]
fn metrics_partition_each_rank_timeline_exactly() {
    let bench = Benchmark::Cg(Cg::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let run = run_observed(&bench, &starved(5), &dist, 2, false).unwrap();

    let metrics = Metrics::from_traces(&run.traces);
    assert_eq!(metrics.breakdowns.len(), 4);
    for b in &metrics.breakdowns {
        let covered: u64 = b.buckets().iter().map(|(_, v)| v).sum();
        assert_eq!(covered, b.finish_ns, "rank {} buckets partition", b.rank);
        let frac_sum: f64 = b.fractions().iter().map(|(_, f)| f).sum();
        assert!(
            frac_sum <= 1.0 + 1e-9,
            "rank {} fractions sum {frac_sum} > 1",
            b.rank
        );
        assert!(
            (frac_sum - 1.0).abs() < 1e-9,
            "fractions cover the timeline"
        );
    }
    assert_eq!(
        metrics.makespan_ns(),
        run.traces
            .iter()
            .map(|t| t.finish.as_nanos())
            .max()
            .unwrap()
    );
}

#[test]
fn observed_run_timing_matches_measured() {
    // run_observed must not change virtual time relative to
    // run_measured — recording is free on the virtual clock.
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 4);
    let spec = starved(3);
    let measured = run_measured(&bench, &spec, &dist, 2, false).unwrap();
    let observed = run_observed(&bench, &spec, &dist, 2, false).unwrap();
    assert_eq!(measured.secs, observed.measured.secs);
    assert_eq!(measured.check, observed.measured.check);
    assert!(!observed.traces.is_empty());
    assert!(observed.hooks.iter().any(|h| !h.is_empty()));
}

/// The fixed scenario behind the golden Perfetto export: 2 ranks, one
/// memory-starved, one Jacobi iteration, quiet seeded cluster.
fn golden_run() -> mheta::apps::Observed {
    let mut spec = ClusterSpec::homogeneous(2);
    spec.noise.amplitude = 0.0;
    spec.seed = 7;
    spec.nodes[1].memory_bytes = 3 * 1024;
    let bench = Benchmark::Jacobi(Jacobi::small());
    let dist = GenBlock::block(bench.total_rows(), 2);
    run_observed(&bench, &spec, &dist, 1, false).unwrap()
}

#[test]
fn perfetto_export_matches_golden_file() {
    let run = golden_run();
    let json = perfetto::perfetto_json(&run.traces, &run.hooks);

    // Determinism first: the export must be byte-stable run to run.
    let again = golden_run();
    assert_eq!(
        json,
        perfetto::perfetto_json(&again.traces, &again.hooks),
        "export not deterministic"
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/observability.perfetto.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect("golden file (rerun with BLESS=1)");
    assert_eq!(
        json, golden,
        "Perfetto export drifted; rerun with BLESS=1 if intended"
    );
}

#[test]
fn perfetto_export_is_schema_sane() {
    let run = golden_run();
    let doc = perfetto::perfetto_trace(&run.traces, &run.hooks);

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    let mut slices = 0;
    let mut counters = 0;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .expect("every event has ph");
        assert!(ev.get("pid").and_then(Value::as_u64).is_some());
        match ph {
            "M" => {
                assert!(ev.get("args").is_some(), "metadata carries args.name");
            }
            "X" => {
                slices += 1;
                let ts = ev.get("ts").and_then(Value::as_f64).expect("slice ts");
                let dur = ev.get("dur").and_then(Value::as_f64).expect("slice dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!(ev.get("tid").and_then(Value::as_u64).is_some());
            }
            "C" => {
                counters += 1;
                let ts = ev.get("ts").and_then(Value::as_f64).expect("counter ts");
                assert!(ts >= 0.0);
                let args = ev.get("args").expect("counter series");
                assert!(args.get("in_use_bytes").and_then(Value::as_u64).is_some());
                assert!(args
                    .get("high_water_bytes")
                    .and_then(Value::as_u64)
                    .is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(slices > 0, "export contains complete slices");
    assert!(counters > 0, "export contains memory counter samples");
    // Both tracks are present: raw sim events and hook scopes.
    let tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(Value::as_u64))
        .collect();
    assert!(tids.contains(&0) && tids.contains(&1));
}
